"""Neighbourhood-dependent layout effects: STI/LOD stress and WPE.

These are the effects that make analog placement *non-separable*: a unit's
parameters depend not only on where it sits but on what sits next to it.
They are the reason "put dummies around everything" is a common (area-
doubling) mitigation, and they are inherently non-linear in position — a
symmetric placement does not cancel them.

The models are deliberately first-order versions of the published forms:

* **LOD / STI stress** — shallow-trench-isolation compresses the channel
  from each diffusion edge; the stress felt falls off with the length of
  contiguous diffusion (abutted neighbours) on each side.  Compressive
  stress degrades NMOS mobility and improves PMOS mobility.
* **WPE (well proximity effect)** — ions scattering off the well-edge
  photoresist raise the doping near the well boundary, shifting V_th up
  for devices close to the edge, decaying roughly exponentially.

A :class:`UnitContext` captures exactly the neighbourhood facts these
models need; the layout package produces contexts from a placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class UnitContext:
    """The placement-derived facts one unit exposes to variation models.

    Attributes:
        x: unit-centre x position [m].
        y: unit-centre y position [m].
        run_left: contiguous occupied cells immediately left of the unit
            (its shared-diffusion run); 0 means STI directly abuts.
        run_right: contiguous occupied cells immediately to the right.
        dist_to_edge: distance to the nearest canvas/well boundary [m].
    """

    x: float
    y: float
    run_left: int = 0
    run_right: int = 0
    dist_to_edge: float = math.inf

    def __post_init__(self) -> None:
        if self.run_left < 0 or self.run_right < 0:
            raise ValueError("diffusion runs cannot be negative")
        if self.dist_to_edge < 0:
            raise ValueError("dist_to_edge cannot be negative")


@dataclass(frozen=True)
class LodStressModel:
    """First-order LOD/STI stress model.

    The relative mobility (beta) shift of a unit is::

        dbeta_rel = -polarity_sign * k_stress * (f(run_left) + f(run_right)) / 2
        f(run)    = 1 / (1 + run)

    so a unit with STI hard against both diffusion edges (run 0 both sides)
    feels the full stress, while one in the middle of a long abutted row
    feels almost none.  ``polarity_sign`` is +1 for NMOS (compressive
    stress hurts) and -1 for PMOS (it helps), matching silicon behaviour.

    Attributes:
        k_beta: full-stress relative beta shift magnitude (e.g. 0.02 = 2 %).
        k_vth: full-stress threshold shift magnitude [V] (same spatial form;
            stress also moves V_th, typically a few mV).
    """

    k_beta: float = 0.02
    k_vth: float = 0.002

    def _stress(self, ctx: UnitContext) -> float:
        left = 1.0 / (1.0 + ctx.run_left)
        right = 1.0 / (1.0 + ctx.run_right)
        return 0.5 * (left + right)

    def dbeta_rel(self, ctx: UnitContext, polarity: int) -> float:
        """Relative beta shift for a unit of the given polarity."""
        if polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {polarity}")
        return -float(polarity) * self.k_beta * self._stress(ctx)

    def dvth(self, ctx: UnitContext, polarity: int) -> float:
        """Threshold shift [V] for a unit of the given polarity."""
        if polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {polarity}")
        return self.k_vth * self._stress(ctx)

    def _stress_array(
        self, run_left: np.ndarray, run_right: np.ndarray
    ) -> np.ndarray:
        return 0.5 * (1.0 / (1.0 + run_left) + 1.0 / (1.0 + run_right))

    def dbeta_rel_array(
        self, run_left: np.ndarray, run_right: np.ndarray, polarity: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`dbeta_rel` over unit arrays."""
        return (-polarity.astype(float) * self.k_beta
                * self._stress_array(run_left, run_right))

    def dvth_array(
        self, run_left: np.ndarray, run_right: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`dvth` over unit arrays (polarity-independent)."""
        return self.k_vth * self._stress_array(run_left, run_right)


@dataclass(frozen=True)
class WellProximityModel:
    """Exponential-decay well proximity effect.

    ``dvth = k_vth * exp(-dist_to_edge / decay_length)``

    The canvas boundary stands in for the well edge: the placement region
    for each circuit is its own well island in this substrate, so distance
    to the region edge is exactly distance to the well edge.

    Attributes:
        k_vth: threshold shift at the well edge [V].
        decay_length: 1/e decay distance [m].
    """

    k_vth: float = 0.004
    decay_length: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.decay_length <= 0:
            raise ValueError("decay_length must be positive")

    def dvth(self, ctx: UnitContext) -> float:
        """Threshold shift [V] for a unit at ``ctx``'s edge distance."""
        if math.isinf(ctx.dist_to_edge):
            return 0.0
        return self.k_vth * math.exp(-ctx.dist_to_edge / self.decay_length)

    def dvth_array(self, dist_to_edge: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`dvth` over an edge-distance array."""
        finite = np.isfinite(dist_to_edge)
        out = np.zeros(np.shape(dist_to_edge))
        out[finite] = self.k_vth * np.exp(
            -dist_to_edge[finite] / self.decay_length)
        return out
