"""Pelgrom-law random local mismatch.

Random variation is *placement-independent* (only device area matters), so
it cannot be optimized by the placer — the paper points this out: random
variation is handled by sizing, systematic variation by layout.  The model
is still needed for two things:

* Monte-Carlo offset studies in the examples (total = systematic + random);
* the sanity anchor that placement optimization leaves the random floor
  untouched (tested in ``tests/variation``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PelgromMismatch:
    """Area-scaled random mismatch, Pelgrom & Duinmaijer (JSSC'89).

    Standard deviations for a *single unit* of drawn size ``W x L``::

        sigma(dVth)      = a_vth  / sqrt(W * L)
        sigma(dbeta/beta) = a_beta / sqrt(W * L)

    with ``W``, ``L`` in metres.  Matching coefficients are quoted in the
    customary units (mV*um for ``a_vth``, %*um for ``a_beta``) via the
    constructor helpers to keep magnitudes recognisable.

    Attributes:
        a_vth: V_th matching coefficient [V*m].
        a_beta: beta matching coefficient [m] (dimensionless shift * m).
    """

    a_vth: float = 3.5e-3 * 1e-6
    a_beta: float = 0.01 * 1e-6

    def __post_init__(self) -> None:
        if self.a_vth < 0 or self.a_beta < 0:
            raise ValueError("matching coefficients cannot be negative")

    def sigma_vth(self, width: float, length: float) -> float:
        """Per-unit V_th sigma [V] for a ``width x length`` [m] unit."""
        self._check_dims(width, length)
        return self.a_vth / math.sqrt(width * length)

    def sigma_beta(self, width: float, length: float) -> float:
        """Per-unit relative-beta sigma for a ``width x length`` [m] unit."""
        self._check_dims(width, length)
        return self.a_beta / math.sqrt(width * length)

    def sample_unit(
        self, width: float, length: float, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Draw one unit's random ``(dvth, dbeta_rel)`` pair."""
        return (
            float(rng.normal(0.0, self.sigma_vth(width, length))),
            float(rng.normal(0.0, self.sigma_beta(width, length))),
        )

    def device_sigma_vth(self, width: float, length: float, n_units: int) -> float:
        """Effective V_th sigma of ``n_units`` identical units in parallel.

        Parallel units average their thresholds to first order, so the
        device-level sigma shrinks by ``sqrt(n_units)`` — the familiar
        "bigger device matches better" rule.
        """
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        return self.sigma_vth(width, length) / math.sqrt(n_units)

    @staticmethod
    def _check_dims(width: float, length: float) -> None:
        if width <= 0 or length <= 0:
            raise ValueError(f"unit dimensions must be positive, got {width} x {length}")
