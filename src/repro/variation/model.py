"""The :class:`VariationModel` combinator — positions in, parameter deltas out.

This is the single interface between physical placement and electrical
simulation.  The evaluation pipeline derives a :class:`UnitContext` for each
unit of each device, hands them to the model, and receives per-device
``(dvth, dbeta_rel)`` deltas to apply to the nominal MOSFET parameters.

A device built from several parallel units takes the *average* of its unit
deltas — to first order, parallel identical units average their threshold
and transconductance shifts.  That averaging is what gives placement its
power: by choosing where the units of two matched devices sit, an optimizer
can equalise the averages even under a non-linear field.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Mapping, Sequence

import numpy as np

from repro.variation.gradients import (
    CompositeField,
    LinearGradient,
    QuadraticGradient,
    ScalarField,
    SinusoidalGradient,
    field_values,
)
from repro.variation.lde import LodStressModel, UnitContext, WellProximityModel
from repro.variation.mismatch import PelgromMismatch


@dataclass(frozen=True)
class DeviceDelta:
    """Parameter perturbation of one device instance.

    Attributes:
        dvth: additive threshold shift [V], in magnitude space (applies to
            NMOS and PMOS alike; positive = harder to turn on).
        dbeta_rel: relative transconductance-factor shift (0.01 = +1 %).
    """

    dvth: float = 0.0
    dbeta_rel: float = 0.0

    def __add__(self, other: "DeviceDelta") -> "DeviceDelta":
        return DeviceDelta(self.dvth + other.dvth, self.dbeta_rel + other.dbeta_rel)


@dataclass(frozen=True)
class VariationModel:
    """Systematic fields + LDE models + random mismatch, combined.

    Attributes:
        vth_field: deterministic V_th field over the die [V].
        beta_field: deterministic relative-beta field over the die.
        lod: STI/LOD stress model, or ``None`` to disable.
        wpe: well-proximity model, or ``None`` to disable.
        mismatch: Pelgrom random mismatch, or ``None`` to disable.
    """

    vth_field: ScalarField = CompositeField()
    beta_field: ScalarField = CompositeField()
    lod: LodStressModel | None = None
    wpe: WellProximityModel | None = None
    mismatch: PelgromMismatch | None = None

    def systematic_unit(self, ctx: UnitContext, polarity: int) -> DeviceDelta:
        """Deterministic delta of a single unit at ``ctx``."""
        dvth = self.vth_field.value(ctx.x, ctx.y)
        dbeta = self.beta_field.value(ctx.x, ctx.y)
        if self.lod is not None:
            dvth += self.lod.dvth(ctx, polarity)
            dbeta += self.lod.dbeta_rel(ctx, polarity)
        if self.wpe is not None:
            dvth += self.wpe.dvth(ctx)
        return DeviceDelta(dvth, dbeta)

    def systematic_device(
        self, contexts: Sequence[UnitContext], polarity: int
    ) -> DeviceDelta:
        """Deterministic delta of a device = average over its units."""
        if not contexts:
            raise ValueError("a device needs at least one unit context")
        deltas = [self.systematic_unit(ctx, polarity) for ctx in contexts]
        n = float(len(deltas))
        return DeviceDelta(
            dvth=sum(d.dvth for d in deltas) / n,
            dbeta_rel=sum(d.dbeta_rel for d in deltas) / n,
        )

    def systematic_units(
        self,
        x: np.ndarray,
        y: np.ndarray,
        run_left: np.ndarray,
        run_right: np.ndarray,
        dist_to_edge: np.ndarray,
        polarity: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`systematic_unit` over flat unit arrays.

        Returns per-unit ``(dvth, dbeta_rel)`` arrays; one call serves all
        units of all devices — of a whole candidate batch — at once.
        """
        dvth = field_values(self.vth_field, x, y)
        dbeta = field_values(self.beta_field, x, y)
        if self.lod is not None:
            dvth = dvth + self.lod.dvth_array(run_left, run_right)
            dbeta = dbeta + self.lod.dbeta_rel_array(
                run_left, run_right, polarity)
        if self.wpe is not None:
            dvth = dvth + self.wpe.dvth_array(dist_to_edge)
        return dvth, dbeta

    def systematic_devices(
        self,
        contexts_by_device: Mapping[str, Sequence[UnitContext]],
        polarity_by_device: Mapping[str, int],
    ) -> dict[str, DeviceDelta]:
        """Deterministic deltas of many devices in one vectorized pass.

        Flattens every device's unit contexts into position/neighbourhood
        arrays, evaluates the fields and LDE models once, and averages
        per device — numerically the per-device result of
        :meth:`systematic_device`, without the per-unit Python dispatch.
        """
        names = list(contexts_by_device)
        counts = []
        flat: list[UnitContext] = []
        polarity: list[int] = []
        for name in names:
            contexts = contexts_by_device[name]
            if not contexts:
                raise ValueError("a device needs at least one unit context")
            counts.append(len(contexts))
            flat.extend(contexts)
            polarity.extend([polarity_by_device[name]] * len(contexts))
        dvth, dbeta = self.systematic_units(
            np.array([c.x for c in flat]),
            np.array([c.y for c in flat]),
            np.array([c.run_left for c in flat], dtype=float),
            np.array([c.run_right for c in flat], dtype=float),
            np.array([c.dist_to_edge for c in flat]),
            np.array(polarity),
        )
        counts_arr = np.asarray(counts)
        starts = np.concatenate(([0], np.cumsum(counts_arr)[:-1]))
        dvth_mean = np.add.reduceat(dvth, starts) / counts_arr
        dbeta_mean = np.add.reduceat(dbeta, starts) / counts_arr
        return {
            name: DeviceDelta(dvth=float(v), dbeta_rel=float(b))
            for name, v, b in zip(names, dvth_mean, dbeta_mean)
        }

    def sample_device(
        self,
        contexts: Sequence[UnitContext],
        polarity: int,
        unit_width: float,
        unit_length: float,
        rng: np.random.Generator,
    ) -> DeviceDelta:
        """Systematic delta plus one random-mismatch draw.

        Each unit draws an independent Pelgrom sample; the device takes the
        average, so larger (more-unit) devices are automatically better
        matched — no special-casing needed.
        """
        base = self.systematic_device(contexts, polarity)
        if self.mismatch is None:
            return base
        draws = [
            self.mismatch.sample_unit(unit_width, unit_length, rng)
            for _ in contexts
        ]
        n = float(len(draws))
        return DeviceDelta(
            dvth=base.dvth + sum(d[0] for d in draws) / n,
            dbeta_rel=base.dbeta_rel + sum(d[1] for d in draws) / n,
        )


def default_variation_model(
    canvas_extent: float,
    kind: str = "nonlinear",
    with_lde: bool = True,
    with_mismatch: bool = False,
) -> VariationModel:
    """The calibrated variation model used by the experiments.

    Field magnitudes are scaled to ``canvas_extent`` (the die region's side
    length in metres) so every circuit sees comparable variation severity:
    the systematic V_th span across the canvas is on the order of 10 mV and
    the beta span on the order of 2 % — representative of 40 nm-class
    within-die variation.

    Args:
        canvas_extent: side length of the placement region [m].
        kind: ``"nonlinear"`` (the paper's regime: linear + quadratic +
            sinusoidal), ``"linear"`` (ablation C's control: pure gradient),
            or ``"none"`` (zero systematic field).
        with_lde: include LOD/WPE neighbourhood effects.
        with_mismatch: include Pelgrom random mismatch.

    Raises:
        ValueError: for an unknown ``kind``.
    """
    if canvas_extent <= 0:
        raise ValueError(f"canvas_extent must be positive, got {canvas_extent}")
    ext = canvas_extent
    centre = ext / 2.0

    linear_vth = LinearGradient(gx=3.0e-3 / ext, gy=2.0e-3 / ext)
    linear_beta = LinearGradient(gx=0.008 / ext, gy=0.005 / ext)

    if kind == "linear":
        vth_field: ScalarField = CompositeField((linear_vth,))
        beta_field: ScalarField = CompositeField((linear_beta,))
    elif kind == "nonlinear":
        vth_field = CompositeField(
            (
                linear_vth,
                QuadraticGradient(
                    cxx=4.0e-3 / ext**2,
                    cyy=3.0e-3 / ext**2,
                    cxy=1.5e-3 / ext**2,
                    x0=0.35 * ext,
                    y0=0.60 * ext,
                ),
                SinusoidalGradient(
                    amplitude=1.5e-3,
                    wavelength_x=0.8 * ext,
                    wavelength_y=1.1 * ext,
                    phase_x=0.7,
                    phase_y=1.9,
                ),
            )
        )
        beta_field = CompositeField(
            (
                linear_beta,
                QuadraticGradient(
                    cxx=0.010 / ext**2,
                    cyy=0.012 / ext**2,
                    cxy=-0.004 / ext**2,
                    x0=0.65 * ext,
                    y0=0.30 * ext,
                ),
                SinusoidalGradient(
                    amplitude=0.004,
                    wavelength_x=1.3 * ext,
                    wavelength_y=0.7 * ext,
                    phase_x=2.1,
                    phase_y=0.4,
                ),
            )
        )
    elif kind == "none":
        vth_field = CompositeField()
        beta_field = CompositeField()
    else:
        raise ValueError(f"unknown variation kind: {kind!r}")

    # Re-centre so the field is zero-mean-ish at the canvas centre; this
    # keeps absolute operating points near nominal and makes mismatch the
    # placement-dependent signal.
    vth_field = CompositeField(
        (vth_field, UniformOffsetFrom(vth_field, centre, centre))
    )
    beta_field = CompositeField(
        (beta_field, UniformOffsetFrom(beta_field, centre, centre))
    )

    return VariationModel(
        vth_field=vth_field,
        beta_field=beta_field,
        lod=LodStressModel() if with_lde else None,
        wpe=WellProximityModel() if with_lde else None,
        mismatch=PelgromMismatch() if with_mismatch else None,
    )


@dataclass(frozen=True)
class UniformOffsetFrom:
    """Constant field equal to minus another field's value at a point.

    Composing ``f + UniformOffsetFrom(f, x0, y0)`` re-centres ``f`` to be
    zero at ``(x0, y0)`` without touching its shape.
    """

    source: ScalarField
    x0: float
    y0: float

    @cached_property
    def _level(self) -> float:
        return -self.source.value(self.x0, self.y0)

    def value(self, x: float, y: float) -> float:
        return self._level

    def values(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.full(np.shape(x), self._level)
