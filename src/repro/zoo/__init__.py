"""The policy zoo: signature-indexed cross-circuit policy transfer.

The paper's bottom-level state encoding is translation-invariant and
group-local, so a group agent's Q-table is a property of the *primitive*
(diff pair of two 3-finger NMOS devices, four-way 2-finger mirror, ...),
not of the circuit it was learned on.  This package turns that into a
serving feature:

* :mod:`repro.zoo.signature` canonicalizes a circuit's constraint groups
  into hashable signatures (primitive kind, polarity, member geometry,
  pairing structure — never device or group *names*);
* :mod:`repro.zoo.index` matches a never-seen circuit's groups against
  every signature-stamped policy in a
  :class:`~repro.service.policies.PolicyStore` and assembles a composite
  warm-start snapshot, remapped onto the new circuit's agent addresses.

``/place`` requests opt in with ``warm_policy: "auto"``; ``repro zoo``
drives corpus-wide training and offline matching.
"""

from repro.zoo.signature import (
    MATCH_TIERS,
    GroupSignature,
    block_signatures,
    circuit_signature,
    group_signature,
    signature_meta,
)
from repro.zoo.index import ZooIndex, ZooMatch

__all__ = [
    "GroupSignature",
    "MATCH_TIERS",
    "ZooIndex",
    "ZooMatch",
    "block_signatures",
    "circuit_signature",
    "group_signature",
    "signature_meta",
]
