"""The signature index: assemble composite warm starts from the policy zoo.

:class:`ZooIndex` scans a :class:`~repro.service.policies.PolicyStore`'s
metadata (never the table payloads) for the ``zoo`` signature maps
training stamps into every snapshot, matches a target block's groups
against them, and builds a composite ``export_tables()``-style snapshot:

* per target group, the best-matching stored group wins by **signature
  specificity** (``"exact"`` — the full signature agrees, so the tables
  share a state/action space — beats ``"coarse"`` — kind/polarity/arity
  agree but unit counts differ), then by recorded Bellman-update visits;
* when several policies match at the winning tier, their tables **fold**
  with the ``"visits"``-weighted merge rule, so heavily-trained evidence
  dominates light exploration;
* the source table is **remapped** onto the target's agent address
  (``("bottom", <target group>)``) — group names are positional artifacts
  of each extraction run, only signatures correspond;
* the top-level (or flat single-agent) table transfers only on
  whole-circuit signature equality — its state is global, so anything
  less specific would be noise.

The match is fully deterministic: stores list in name/version order and
every ranking breaks ties lexically on the policy ref.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.qlearning import QTable
from repro.netlist.library import AnalogBlock
from repro.service.policies import PolicyInfo, PolicyStore
from repro.zoo.signature import (
    GroupSignature,
    MATCH_TIERS,
    block_signatures,
    circuit_signature,
)

#: Default cap on how many same-tier policies fold into one group table.
DEFAULT_MAX_SOURCES = 4


@dataclass
class ZooMatch:
    """A composite warm start plus the report explaining it.

    Attributes:
        tables: ``agent address -> QTable`` snapshot, remapped onto the
            target circuit's addresses — feed it straight to
            ``placer.warm_start_from`` / ``RunSpec.initial_tables``.
        report: JSON-plain match report (echoed into placement results).
    """

    tables: dict = field(default_factory=dict)
    report: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.tables


@dataclass(frozen=True)
class _Candidate:
    """One stored group that matches one target group."""

    tier: str
    visits: int
    info: PolicyInfo
    group: str

    @property
    def label(self) -> str:
        return f"{self.info.ref}:{self.group}"

    def sort_key(self) -> tuple:
        # Highest visits first; ref then group name as deterministic ties.
        return (-self.visits, self.info.ref, self.group)


class ZooIndex:
    """Signature matching over one policy store.

    Args:
        store: the policy store to index.  Only snapshots whose meta
            carries a ``zoo`` signature map participate (``repro zoo
            train-all`` and served ``/train`` jobs stamp it); plain
            snapshots are simply invisible to the index.
    """

    def __init__(self, store: PolicyStore):
        self.store = store

    # ----------------------------------------------------------- scanning

    def entries(self) -> list[PolicyInfo]:
        """Signature-stamped policies, name/version order (meta only)."""
        return [
            info for info in self.store.list()
            if isinstance(info.meta.get("zoo"), dict)
            and isinstance(info.meta["zoo"].get("groups"), dict)
        ]

    # ----------------------------------------------------------- matching

    def match(
        self,
        block: AnalogBlock,
        *,
        placer: str = "ql",
        min_tier: str = "coarse",
        max_sources: int = DEFAULT_MAX_SOURCES,
    ) -> ZooMatch:
        """Assemble the composite warm start for a (possibly unseen) block.

        Args:
            block: the target circuit.
            placer: target placer kind — ``"ql"`` transfers per-group
                bottom tables (plus the top table on a whole-circuit
                match); ``"flat"`` transfers only the single-agent table
                and only on a whole-circuit match; anything else matches
                nothing.
            min_tier: least-specific tier allowed (``"exact"`` restricts
                to state-space-compatible matches; ``"coarse"``, the
                default, also accepts kind/polarity/arity matches).
            max_sources: cap on same-tier policies folded per group.
        """
        if min_tier not in MATCH_TIERS:
            raise ValueError(
                f"min_tier must be one of {MATCH_TIERS}, got {min_tier!r}"
            )
        if max_sources < 1:
            raise ValueError(f"max_sources must be >= 1, got {max_sources}")
        infos = self.entries()
        target_circuit_sig = circuit_signature(block)
        report: dict = {
            "circuit_signature": target_circuit_sig,
            "policies_scanned": len(infos),
            "groups": {},
            "top": None,
        }
        tables: dict[tuple, QTable] = {}
        loaded: dict[str, dict] = {}

        def tables_of(info: PolicyInfo) -> dict:
            if info.ref not in loaded:
                loaded[info.ref] = self.store.load(info.ref)[0]
            return loaded[info.ref]

        if placer == "ql":
            self._match_groups(block, infos, min_tier, max_sources,
                               tables, report, tables_of)
            top_sources = self._fold_address(
                ("top",), ("top",), target_circuit_sig, infos, max_sources,
                tables, tables_of,
            )
        elif placer == "flat":
            top_sources = self._fold_address(
                ("agent",), ("agent",), target_circuit_sig, infos,
                max_sources, tables, tables_of,
            )
        else:
            top_sources = []
        if top_sources:
            address = ("top",) if placer == "ql" else ("agent",)
            report["top"] = {
                "sources": top_sources,
                "entries": tables[address].n_entries,
            }
        return ZooMatch(tables=tables, report=report)

    # ---------------------------------------------------------- internals

    def _match_groups(self, block, infos, min_tier, max_sources,
                      tables, report, tables_of) -> None:
        signatures = block_signatures(block)
        for group_name, sig in signatures.items():
            candidates = self._candidates(sig, infos, min_tier)
            entry: dict = {"signature": sig.key(), "tier": None,
                           "sources": [], "entries": 0}
            if candidates:
                best_tier = min(
                    candidates, key=lambda c: MATCH_TIERS.index(c.tier)
                ).tier
                chosen = sorted(
                    (c for c in candidates if c.tier == best_tier),
                    key=_Candidate.sort_key,
                )[:max_sources]
                folded = QTable()
                for cand in chosen:
                    source = tables_of(cand.info).get(("bottom", cand.group))
                    if source is not None:
                        folded.merge(source, how="visits")
                if folded.n_entries:
                    tables[("bottom", group_name)] = folded
                    entry.update(
                        tier=best_tier,
                        sources=[c.label for c in chosen],
                        entries=folded.n_entries,
                    )
            report["groups"][group_name] = entry

    def _candidates(self, sig: GroupSignature, infos,
                    min_tier: str) -> list[_Candidate]:
        allowed = MATCH_TIERS[: MATCH_TIERS.index(min_tier) + 1]
        out: list[_Candidate] = []
        key, coarse = sig.key(), sig.coarse_key()
        for info in infos:
            zoo = info.meta["zoo"]
            visits = zoo.get("group_visits", {})
            for group, stored_key in zoo["groups"].items():
                if stored_key == key:
                    tier = "exact"
                else:
                    try:
                        stored = GroupSignature.from_key(stored_key)
                    except ValueError:
                        continue
                    if stored.coarse_key() != coarse:
                        continue
                    tier = "coarse"
                if tier not in allowed:
                    continue
                out.append(_Candidate(
                    tier=tier, visits=int(visits.get(group, 0)),
                    info=info, group=group,
                ))
        return out

    def _fold_address(self, source_address, target_address, target_sig,
                      infos, max_sources, tables, tables_of) -> list[str]:
        """Fold whole-circuit-matched tables at one agent address."""
        matched = [
            info for info in infos
            if info.meta["zoo"].get("circuit_signature") == target_sig
        ]
        matched.sort(
            key=lambda i: (-int(i.meta["zoo"].get("top_visits", 0)), i.ref)
        )
        sources = []
        folded = QTable()
        for info in matched[:max_sources]:
            table = tables_of(info).get(source_address)
            if table is not None:
                folded.merge(table, how="visits")
                sources.append(info.ref)
        if folded.n_entries:
            tables[target_address] = folded
        return sources if folded.n_entries else []
