"""Primitive signatures: rename-stable fingerprints of constraint groups.

A signature captures exactly what makes two groups *interchangeable* to
the bottom-level agents: the primitive kind, and the multiset of member
``(polarity, n_units)`` geometry the translation-invariant group state is
built from (:meth:`repro.layout.env.PlacementEnv.group_state` encodes
``(device index, dcol, drow)`` offsets, so member count and per-member
unit counts decide whether two groups share a state/action space).  The
number of internal matched pairs distinguishes e.g. a matched mirror from
a ratioed one.

Device names, group names and net names never enter a signature — the
extractor's positional names (``dp0``, ``cm3``) differ deck to deck for
identical primitives, which is the whole reason the policy store needs a
structural index.

Signatures serialize to compact strings (:meth:`GroupSignature.key`) so
they live in policy-snapshot metadata as plain JSON and can be compared
without loading table payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.library import AnalogBlock
from repro.netlist.primitives import Group

#: Match tiers :class:`~repro.zoo.index.ZooIndex` distinguishes, most
#: specific first: ``"exact"`` — full signature equality (the Q-tables
#: share a state/action space); ``"coarse"`` — kind, polarity multiset
#: and member count agree but unit counts differ (tables overlap only
#: where states coincide, still a useful prior).
MATCH_TIERS = ("exact", "coarse")


@dataclass(frozen=True, order=True)
class GroupSignature:
    """Canonical fingerprint of one constraint group.

    Attributes:
        kind: the :class:`~repro.netlist.primitives.GroupKind` value
            (``"diff_pair"``, ``"current_mirror"``, ...).
        members: sorted ``(polarity, n_units)`` per member — the group's
            geometry multiset.
        internal_pairs: matched pairs with both ends inside the group.
    """

    kind: str
    members: tuple[tuple[int, int], ...]
    internal_pairs: int

    @property
    def n_members(self) -> int:
        return len(self.members)

    @property
    def coarse(self) -> tuple:
        """The kind/polarity/arity tier (unit counts dropped)."""
        return (self.kind, tuple(p for p, __ in self.members))

    def key(self) -> str:
        """Compact string form, e.g. ``"diff_pair|+1x3,+1x3|p1"``."""
        geom = ",".join(f"{p:+d}x{u}" for p, u in self.members)
        return f"{self.kind}|{geom}|p{self.internal_pairs}"

    def coarse_key(self) -> str:
        """String form of :attr:`coarse`, e.g. ``"diff_pair|+1,+1"``."""
        return f"{self.kind}|{','.join(f'{p:+d}' for p, __ in self.members)}"

    @classmethod
    def from_key(cls, key: str) -> "GroupSignature":
        """Parse a :meth:`key` string back (inverse of ``key()``)."""
        try:
            kind, geom, pairs = key.split("|")
            members = tuple(
                (int(tok.split("x")[0]), int(tok.split("x")[1]))
                for tok in geom.split(",")
            )
            if not pairs.startswith("p"):
                raise ValueError(key)
            return cls(kind=kind, members=members,
                       internal_pairs=int(pairs[1:]))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"bad group-signature key {key!r}") from exc


def group_signature(block: AnalogBlock, group: Group) -> GroupSignature:
    """The signature of one of ``block``'s groups."""
    members = tuple(sorted(
        (
            int(getattr(block.circuit.device(name), "polarity", 0)),
            int(getattr(block.circuit.device(name), "n_units", 1)),
        )
        for name in group.devices
    ))
    inside = frozenset(group.devices)
    internal = sum(
        1 for pair in block.pairs if pair.a in inside and pair.b in inside
    )
    return GroupSignature(kind=group.kind.value, members=members,
                          internal_pairs=internal)


def block_signatures(block: AnalogBlock) -> dict[str, GroupSignature]:
    """Group name → signature, for every group of the block.

    The group *names* here are local handles (the live block's agent
    addresses are ``("bottom", <name>)``); only the signatures are
    comparable across circuits.
    """
    return {g.name: group_signature(block, g) for g in block.groups}


def circuit_signature(block: AnalogBlock) -> str:
    """Whole-circuit signature: the sorted multiset of group signatures.

    Two blocks with equal circuit signatures present identical state
    spaces to the *top* agent up to group ordering — the only situation
    in which the global-centroid table is worth transferring.
    """
    return ";".join(sorted(
        sig.key() for sig in block_signatures(block).values()
    ))


def _table_visits(table) -> int:
    """Total recorded Bellman updates behind one Q-table."""
    return sum(visits for *__, visits in table.entries())


def signature_meta(block: AnalogBlock, tables: dict | None = None) -> dict:
    """The JSON-plain ``zoo`` metadata stamped into policy snapshots.

    Shape::

        {"circuit_signature": "<sig;sig;...>",
         "groups": {"<group name>": "<signature key>", ...},
         "group_visits": {"<group name>": <int>, ...},   # with tables
         "top_visits": <int>}                            # with tables

    Group names index the snapshot's ``("bottom", <name>)`` tables; the
    signature keys are what :class:`~repro.zoo.index.ZooIndex` matches.
    When the policy's tables snapshot is passed, per-group visit totals
    ride along so the index can rank same-tier matches by recorded
    evidence without loading table payloads.
    """
    meta: dict = {
        "circuit_signature": circuit_signature(block),
        "groups": {
            name: sig.key() for name, sig in block_signatures(block).items()
        },
    }
    if tables is not None:
        visits: dict[str, int] = {}
        top = 0
        for address, table in tables.items():
            if address[0] == "bottom" and len(address) == 2:
                visits[address[1]] = _table_visits(table)
            elif address in (("top",), ("agent",)):
                top += _table_visits(table)
        meta["group_visits"] = visits
        meta["top_visits"] = top
    return meta
