"""The propose/observe candidate protocol and its k=1 trajectory guarantee.

The golden values below were recorded from the pre-refactor placers
(select → apply → price → learn → keep/revert, one move per step) on the
deterministic wirelength objective.  Every placer rebuilt around the
batched propose(k)/observe protocol must reproduce them **bit for bit**
at ``batch=1`` — the refactor is a throughput knob, not a behavior
change.
"""

import pytest

from repro.core import (
    FlatQPlacer,
    MultiLevelPlacer,
    Outcome,
    Proposal,
    ProposingAgent,
    QAgent,
    SimulatedAnnealingPlacer,
    epsilon_greedy_topk,
    price_proposals,
)
from repro.core.annealing import _SaTurn
from repro.core.hierarchy import _TopTurn
from repro.layout import PlacementEnv
from repro.netlist import current_mirror, five_transistor_ota
from repro.route import total_wirelength
from repro.tech import generic_tech_40

TECH = generic_tech_40()


def make_env(builder=five_transistor_ota):
    block = builder()
    return PlacementEnv(
        block, lambda p: total_wirelength(block.circuit, p, TECH) * 1e6)


# (best_cost, sims_used, steps, history) of the pre-refactor placers:
# five_transistor_ota, wirelength objective, seed=7, max_steps=80.  The
# trackers now seed every history with the starting sample, so each
# golden history gains the (1, initial_cost) point the pre-refactor
# trackers silently dropped; every later sample is bit-identical.
GOLDEN_OTA5T = {
    MultiLevelPlacer: (8.5, 81, 80, [
        (1, 11.999999999999998),
        (64, 11.499999999999998), (65, 11.0), (67, 10.500000000000002),
        (69, 9.5), (76, 8.999999999999998), (77, 8.5)]),
    FlatQPlacer: (10.0, 81, 80, [
        (1, 11.999999999999998),
        (6, 11.499999999999998), (9, 10.999999999999998), (11, 10.5),
        (26, 10.0)]),
    SimulatedAnnealingPlacer: (4.000000000000001, 81, 80, [
        (1, 11.999999999999998),
        (6, 11.999999999999996), (11, 11.500000000000002), (14, 10.5),
        (22, 8.5), (26, 8.0), (38, 6.999999999999999),
        (42, 6.499999999999999), (49, 5.0), (64, 4.000000000000001)]),
}
# (best_cost, sims_used, steps): current_mirror, seed=3, max_steps=60.
GOLDEN_CM = {
    MultiLevelPlacer: (8.75, 61, 60),
    FlatQPlacer: (9.25, 61, 60),
    SimulatedAnnealingPlacer: (5.749999999999999, 61, 60),
}

ALL_PLACERS = [MultiLevelPlacer, FlatQPlacer, SimulatedAnnealingPlacer]


@pytest.mark.parametrize("placer_cls", ALL_PLACERS)
class TestK1ReproducesPreRefactorTrajectories:
    def test_golden_ota5t(self, placer_cls):
        result = placer_cls(make_env(), seed=7).optimize(max_steps=80)
        best, sims, steps, history = GOLDEN_OTA5T[placer_cls]
        assert result.best_cost == best          # bit-for-bit, no approx
        assert result.sims_used == sims
        assert result.steps == steps
        assert result.history == history

    def test_golden_cm(self, placer_cls):
        result = placer_cls(
            make_env(current_mirror), seed=3).optimize(max_steps=60)
        assert (result.best_cost, result.sims_used,
                result.steps) == GOLDEN_CM[placer_cls]

    def test_batch_1_explicit_equals_default(self, placer_cls):
        a = placer_cls(make_env(), seed=11).optimize(max_steps=60)
        b = placer_cls(make_env(), batch=1, seed=11).optimize(max_steps=60)
        assert a.best_cost == b.best_cost
        assert a.history == b.history
        assert a.sims_used == b.sims_used


@pytest.mark.parametrize("placer_cls", ALL_PLACERS)
class TestBatchedTurns:
    def test_batched_run_improves(self, placer_cls):
        placer = placer_cls(make_env(), batch=4, seed=5)
        result = placer.optimize(max_steps=60)
        assert result.best_cost <= result.initial_cost
        env = placer.env
        assert env.objective(result.best_placement) == pytest.approx(
            result.best_cost)

    def test_batched_run_deterministic(self, placer_cls):
        r1 = placer_cls(make_env(), batch=4, seed=9).optimize(max_steps=50)
        r2 = placer_cls(make_env(), batch=4, seed=9).optimize(max_steps=50)
        assert r1.best_cost == r2.best_cost
        assert r1.history == r2.history

    def test_batch_prices_k_candidates_per_turn(self, placer_cls):
        placer = placer_cls(make_env(), batch=4, seed=0)
        result = placer.optimize(max_steps=20)
        # Default sim counter counts objective calls: 1 initial + up to 4
        # per turn (agents may have fewer legal/distinct candidates).
        assert result.sims_used > result.steps + 1
        assert result.sims_used <= 1 + 4 * result.steps + 4

    def test_invalid_batch_rejected(self, placer_cls):
        with pytest.raises(ValueError, match="batch"):
            placer_cls(make_env(), batch=0)


class TestProtocolPieces:
    def test_turns_satisfy_protocol(self):
        ml = MultiLevelPlacer(make_env(), seed=0)
        assert isinstance(_TopTurn(ml, ml.top_agent), ProposingAgent)
        sa = SimulatedAnnealingPlacer(make_env(), seed=0)
        assert isinstance(_SaTurn(sa), ProposingAgent)

    def test_price_proposals_routes_costs(self):
        class Stub:
            def __init__(self):
                self.seen = None

            def propose(self, k):
                return [Proposal(action=i, placement=p)
                        for i, p in enumerate(["p0", "p1"][:k])]

            def observe(self, outcomes):
                self.seen = [(o.proposal.action, o.cost) for o in outcomes]
                return outcomes[0].cost

        stub = Stub()
        got = price_proposals(stub, 2, lambda ps: [float(len(p)) for p in ps])
        assert stub.seen == [(0, 2.0), (1, 2.0)]
        assert got == 2.0

    def test_price_proposals_empty_is_none(self):
        class Empty:
            def propose(self, k):
                return []

            def observe(self, outcomes):  # pragma: no cover
                raise AssertionError("must not observe an empty batch")

        assert price_proposals(Empty(), 4, lambda ps: []) is None

    def test_epsilon_greedy_topk_primary_matches_scalar(self):
        import numpy as np

        from repro.core.policy import epsilon_greedy

        q = {"a": 1.0, "b": 3.0, "c": 2.0}
        legal = ["a", "b", "c"]
        for seed in range(20):
            r1 = np.random.default_rng(seed)
            r2 = np.random.default_rng(seed)
            single = epsilon_greedy(q, legal, 0.4, r1)
            many = epsilon_greedy_topk(q, legal, 0.4, r2, 3)
            assert many[0] == single
            assert len(many) == 3 and len(set(many)) == 3
            # Runners-up are ranked by Q estimate.
            rest = [a for a in legal if a != single]
            rest.sort(key=lambda a: -q[a])
            assert many[1:] == rest

    def test_epsilon_greedy_topk_k_validation(self):
        import numpy as np

        with pytest.raises(ValueError, match="k must be"):
            epsilon_greedy_topk({}, ["a"], 0.0, np.random.default_rng(0), 0)

    def test_select_many_advances_one_schedule_step(self):
        agent = QAgent()
        agent.select_many("s", [1, 2, 3], k=3)
        assert agent.steps == 1

    def test_outcome_carries_proposal(self):
        p = Proposal(action="x", placement=None, next_state="s2")
        o = Outcome(proposal=p, cost=1.5)
        assert o.proposal.next_state == "s2"


class TestBatchedObserveLearnsFromAllOutcomes:
    def test_runnerup_outcomes_update_qtable(self):
        """With batch k, a turn writes up to k Q-entries for its state."""
        env1, env2 = make_env(), make_env()
        single = MultiLevelPlacer(env1, batch=1, seed=2)
        batched = MultiLevelPlacer(env2, batch=6, seed=2)
        r1 = single.optimize(max_steps=30)
        r6 = batched.optimize(max_steps=30)
        assert (r6.diagnostics["total_entries"]
                > r1.diagnostics["total_entries"])


class TestEnvCostMany:
    def test_falls_back_to_scalar_objective(self):
        env = make_env()
        placements = [env.placement.copy(), env.placement.copy()]
        assert env.cost_many(placements) == [env.cost(), env.cost()]

    def test_uses_objective_many_for_batches(self):
        block = five_transistor_ota()
        calls = []

        def many(ps):
            calls.append(len(ps))
            return [0.0] * len(ps)

        env = PlacementEnv(block, lambda p: 1.0, objective_many=many)
        p = env.placement
        assert env.cost_many([p.copy(), p.copy()]) == [0.0, 0.0]
        assert calls == [2]
        # Single-candidate batches stay on the scalar objective.
        assert env.cost_many([p.copy()]) == [1.0]
        assert calls == [2]
