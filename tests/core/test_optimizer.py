"""Tests for the shared optimizer bookkeeping (BudgetTracker)."""

from repro.core import BudgetTracker, FlatQPlacer
from repro.layout import PlacementEnv
from repro.layout.generators import banded_placement
from repro.netlist import five_transistor_ota


def make_tracker(initial=10.0):
    placement = banded_placement(five_transistor_ota(), "sequential")
    tracker = BudgetTracker(
        target=None, sim_budget=None,
        best_cost=initial, best_placement=placement.copy(),
    )
    return tracker, placement


class TestBudgetTrackerHistory:
    def test_initial_sample_recorded(self):
        # The seeding update(initial, ...) fails the cost < best_cost
        # test, but the starting point must still land in the history —
        # convergence plots would otherwise silently drop it.
        tracker, placement = make_tracker(10.0)
        tracker.update(10.0, placement, 1)
        assert tracker.history == [(1, 10.0)]
        assert tracker.best_cost == 10.0

    def test_run_that_never_improves_has_nonempty_history(self):
        tracker, placement = make_tracker(10.0)
        tracker.update(10.0, placement, 1)
        for sims in (2, 3, 4):
            tracker.update(12.0, placement, sims)
        assert tracker.history == [(1, 10.0)]

    def test_improvements_append_after_seed(self):
        tracker, placement = make_tracker(10.0)
        tracker.update(10.0, placement, 1)
        tracker.update(8.0, placement, 5)
        tracker.update(9.0, placement, 6)   # worse: not recorded
        tracker.update(7.5, placement, 9)
        assert tracker.history == [(1, 10.0), (5, 8.0), (9, 7.5)]
        assert tracker.best_cost == 7.5

    def test_first_sample_worse_than_seeded_best_still_recorded(self):
        # Degenerate but possible: the tracker is seeded with a better
        # cost than the first update sees; history still gets a seed
        # sample holding the best-so-far.
        tracker, placement = make_tracker(5.0)
        tracker.update(10.0, placement, 1)
        assert tracker.history == [(1, 5.0)]

    def test_target_bookkeeping_unchanged(self):
        placement = banded_placement(five_transistor_ota(), "sequential")
        tracker = BudgetTracker(
            target=8.0, sim_budget=None,
            best_cost=10.0, best_placement=placement.copy(),
        )
        tracker.update(10.0, placement, 1)
        assert not tracker.reached_target
        tracker.update(7.0, placement, 4)
        assert tracker.reached_target
        assert tracker.sims_to_target == 4

    def test_placer_history_starts_at_initial_cost(self):
        env = PlacementEnv(
            five_transistor_ota(), lambda p: float(p.area_cells()))
        result = FlatQPlacer(env, seed=3).optimize(max_steps=15)
        sims0, cost0 = result.history[0]
        assert sims0 == 1
        assert cost0 == result.initial_cost
