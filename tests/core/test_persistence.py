"""Tests for Q-table save/load round trips."""

import json

import numpy as np
import pytest

from repro.core import MultiLevelPlacer, QTable
from repro.core.persistence import (
    load_placer_tables,
    load_tables_snapshot,
    qtable_from_dict,
    qtable_to_dict,
    save_placer_tables,
    save_tables_snapshot,
    tables_from_payload,
    tables_to_payload,
)
from repro.layout import PlacementEnv
from repro.netlist import (
    AnalogBlock,
    Group,
    GroupKind,
    MatchedPair,
    Mosfet,
    Circuit,
    SuperGroup,
    current_mirror,
    five_transistor_ota,
)


def area_objective(placement):
    return float(placement.area_cells())


def hostile_block() -> AnalogBlock:
    """A block whose first group is literally named ``top`` — the name
    that used to collide with the top agent's entries in flat payloads."""
    ckt = Circuit("hostile")
    kw = dict(polarity=+1, width=1e-6, length=0.5e-6, n_units=2)
    ckt.add(Mosfet("m1", {"d": "a", "g": "b", "s": "gnd", "b": "gnd"}, **kw))
    ckt.add(Mosfet("m2", {"d": "b", "g": "a", "s": "gnd", "b": "gnd"}, **kw))
    return AnalogBlock(
        name="HOSTILE", kind="cm", circuit=ckt,
        groups=(
            Group("top", GroupKind.SINGLE, ("m1",)),
            Group("steps", GroupKind.SINGLE, ("m2",)),
        ),
        pairs=(MatchedPair("m1", "m2"),),
        super_groups=(SuperGroup("sym", ("top", "steps")),),
        canvas=(4, 4),
        input_nets=("a",),
    )


class TestQTableRoundTrip:
    def test_empty_table(self):
        table = QTable()
        assert qtable_from_dict(qtable_to_dict(table)).n_entries == 0

    def test_tuple_states_and_actions(self):
        table = QTable()
        table.set(((0, 1, 2), (1, 0, 0)), (3, 7), 1.5)
        table.set("string_state", ("unit", 2, 4), -0.25)
        restored = qtable_from_dict(qtable_to_dict(table))
        assert restored.get(((0, 1, 2), (1, 0, 0)), (3, 7)) == 1.5
        assert restored.get("string_state", ("unit", 2, 4)) == -0.25
        assert restored.n_entries == table.n_entries

    def test_nested_structures(self):
        table = QTable()
        state = (("a", 0, 1), ("b", 2, 3), ("c", 4, 5))
        table.set(state, (0, 0), 0.125)
        restored = qtable_from_dict(qtable_to_dict(table))
        assert restored.state_value(state) == 0.125


class TestPlacerRoundTrip:
    def test_save_load_preserves_learning(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=60)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        env2 = PlacementEnv(five_transistor_ota(), area_objective)
        fresh = MultiLevelPlacer(env2, seed=1)
        load_placer_tables(fresh, path)

        assert (fresh.top_agent.table.n_entries
                == placer.top_agent.table.n_entries)
        for name, agent in placer.bottom_agents.items():
            twin = fresh.bottom_agents[name]
            assert twin.table.n_entries == agent.table.n_entries
            assert twin.steps == agent.steps

    def test_resumed_placer_still_optimizes(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=40)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        env2 = PlacementEnv(five_transistor_ota(), area_objective)
        resumed = MultiLevelPlacer(env2, seed=2)
        load_placer_tables(resumed, path)
        result = resumed.optimize(max_steps=40)
        assert result.best_cost <= result.initial_cost

    def test_midrun_snapshot_resumes_identical_trajectory(self, tmp_path):
        """Save mid-campaign, restore into a fresh placer, and the resumed
        half runs *identically* to the uninterrupted one: snapshots carry
        tables, schedule steps and RNG states — the whole learning state."""
        # Uninterrupted: one placer, two optimize legs.
        env_a = PlacementEnv(five_transistor_ota(), area_objective)
        uninterrupted = MultiLevelPlacer(env_a, seed=13)
        uninterrupted.optimize(max_steps=50)
        second_leg = uninterrupted.optimize(max_steps=50)

        # Interrupted: run the first leg, snapshot, resume elsewhere.
        env_b = PlacementEnv(five_transistor_ota(), area_objective)
        first = MultiLevelPlacer(env_b, seed=13)
        first.optimize(max_steps=50)
        path = tmp_path / "snapshot.json"
        save_placer_tables(first, path)

        env_c = PlacementEnv(five_transistor_ota(), area_objective)
        resumed_placer = MultiLevelPlacer(env_c, seed=999)  # seed overwritten
        load_placer_tables(resumed_placer, path)
        resumed = resumed_placer.optimize(max_steps=50)

        assert resumed.best_cost == second_leg.best_cost
        assert resumed.steps == second_leg.steps
        assert [c for __, c in resumed.history] == [
            c for __, c in second_leg.history]
        assert (resumed.best_placement.as_dict()
                == second_leg.best_placement.as_dict())

    def test_rng_state_round_trips(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=4)
        placer.optimize(max_steps=25)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        twin = MultiLevelPlacer(
            PlacementEnv(five_transistor_ota(), area_objective), seed=4)
        load_placer_tables(twin, path)
        assert (twin.top_agent.rng.bit_generator.state
                == placer.top_agent.rng.bit_generator.state)
        draws_a = placer.top_agent.rng.random(5).tolist()
        draws_b = twin.top_agent.rng.random(5).tolist()
        assert draws_a == draws_b

    def test_table_only_snapshot_still_loads(self, tmp_path):
        """Backward compatibility: snapshots without RNG states load fine."""
        import json

        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=20)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)
        payload = json.loads(path.read_text())
        del payload["rng"]
        path.write_text(json.dumps(payload))

        fresh = MultiLevelPlacer(
            PlacementEnv(five_transistor_ota(), area_objective), seed=1)
        load_placer_tables(fresh, path)
        assert (fresh.top_agent.table.n_entries
                == placer.top_agent.table.n_entries)

    def test_group_mismatch_rejected(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=20)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        other_env = PlacementEnv(current_mirror(), area_objective)
        other = MultiLevelPlacer(other_env, seed=1)
        with pytest.raises(ValueError, match="groups"):
            load_placer_tables(other, path)


class TestNumpyScalars:
    def test_numpy_values_and_keys_round_trip(self, tmp_path):
        table = QTable()
        table.set((np.int64(1), np.int64(2)), (np.int64(0), np.int64(3)),
                  np.float64(1.25))
        payload = qtable_to_dict(table)
        json.dumps(payload)  # must not raise
        restored = qtable_from_dict(payload)
        assert restored.get((1, 2), (0, 3)) == 1.25

    def test_table_trained_through_batched_path_saves(self, tmp_path):
        # Batched pricing hands numpy arrays back to the agents, so
        # rewards (hence Q-values) can arrive as np.float64 — the whole
        # snapshot must still serialise.
        def np_objective(placement):
            return np.float64(placement.area_cells())

        def np_objective_many(placements):
            return np.asarray([float(p.area_cells()) for p in placements])

        env = PlacementEnv(five_transistor_ota(), np_objective,
                           objective_many=np_objective_many)
        placer = MultiLevelPlacer(env, batch=3, seed=2)
        placer.optimize(max_steps=30)
        assert placer.top_agent.table.n_entries > 0
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)  # json.dumps under the hood
        twin = MultiLevelPlacer(
            PlacementEnv(five_transistor_ota(), area_objective), seed=2)
        load_placer_tables(twin, path)
        assert (sorted(twin.top_agent.table.items())
                == sorted(placer.top_agent.table.items()))


class TestHostileGroupNames:
    def test_group_named_top_does_not_corrupt_top_agent(self, tmp_path):
        env = PlacementEnv(hostile_block(), area_objective)
        placer = MultiLevelPlacer(env, seed=5)
        placer.optimize(max_steps=40)
        group_agent = placer.bottom_agents["top"]
        assert placer.top_agent.steps != group_agent.steps  # distinct counters

        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)
        twin = MultiLevelPlacer(
            PlacementEnv(hostile_block(), area_objective), seed=99)
        load_placer_tables(twin, path)

        assert twin.top_agent.steps == placer.top_agent.steps
        assert twin.bottom_agents["top"].steps == group_agent.steps
        assert (twin.top_agent.rng.bit_generator.state
                == placer.top_agent.rng.bit_generator.state)
        assert (twin.bottom_agents["top"].rng.bit_generator.state
                == group_agent.rng.bit_generator.state)

    def test_hostile_resume_reproduces_trajectory(self, tmp_path):
        env_a = PlacementEnv(hostile_block(), area_objective)
        uninterrupted = MultiLevelPlacer(env_a, seed=8)
        uninterrupted.optimize(max_steps=30)
        second_leg = uninterrupted.optimize(max_steps=30)

        env_b = PlacementEnv(hostile_block(), area_objective)
        first = MultiLevelPlacer(env_b, seed=8)
        first.optimize(max_steps=30)
        path = tmp_path / "snapshot.json"
        save_placer_tables(first, path)
        resumed_placer = MultiLevelPlacer(
            PlacementEnv(hostile_block(), area_objective), seed=1234)
        load_placer_tables(resumed_placer, path)
        resumed = resumed_placer.optimize(max_steps=30)

        assert resumed.best_cost == second_leg.best_cost
        # sims counters restart on the resumed placer; costs must match.
        assert [c for __, c in resumed.history] == [
            c for __, c in second_leg.history]

    def test_legacy_flat_payload_still_loads(self, tmp_path):
        """Version-1 snapshots (flat steps/rng keyed by group name beside
        'top') load with the historical lookup."""
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=3)
        placer.optimize(max_steps=25)
        payload = {
            "top": qtable_to_dict(placer.top_agent.table),
            "bottom": {
                name: qtable_to_dict(agent.table)
                for name, agent in placer.bottom_agents.items()
            },
            "steps": {
                "top": placer.top_agent.steps,
                **{name: agent.steps
                   for name, agent in placer.bottom_agents.items()},
            },
            "rng": {
                "top": placer.top_agent.rng.bit_generator.state,
                **{name: agent.rng.bit_generator.state
                   for name, agent in placer.bottom_agents.items()},
            },
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload))

        twin = MultiLevelPlacer(
            PlacementEnv(five_transistor_ota(), area_objective), seed=3)
        load_placer_tables(twin, path)
        assert twin.top_agent.steps == placer.top_agent.steps
        for name, agent in placer.bottom_agents.items():
            assert twin.bottom_agents[name].steps == agent.steps


class TestTablesSnapshots:
    def test_snapshot_payload_round_trip(self):
        table = QTable()
        table.set((0, 1), (2, 3), 1.5)
        other = QTable()
        other.set("s", "a", -0.5)
        tables = {("top",): table, ("bottom", "input_pair"): other}
        restored = tables_from_payload(tables_to_payload(tables))
        assert set(restored) == set(tables)
        assert sorted(restored[("top",)].items()) == sorted(table.items())
        assert (sorted(restored[("bottom", "input_pair")].items())
                == sorted(other.items()))

    def test_snapshot_file_round_trip_with_meta(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=30)
        tables = placer.export_tables()
        path = tmp_path / "master.json"
        save_tables_snapshot(tables, path, round=2, merge_how="max")
        restored, meta = load_tables_snapshot(path)
        assert meta == {"round": 2, "merge_how": "max"}
        assert set(restored) == set(tables)
        for key in tables:
            assert sorted(restored[key].items()) == sorted(tables[key].items())


class TestVisitCountPersistence:
    def test_visits_round_trip_through_payload(self):
        table = QTable()
        table.set("s", "a", 1.5, visits=4)
        table.set("s", "b", 2.5)
        payload = qtable_to_dict(table)
        json.dumps(payload)  # must stay JSON-plain
        restored = qtable_from_dict(payload)
        assert restored.get("s", "a") == 1.5
        assert restored.visits("s", "a") == 4
        assert restored.visits("s", "b") == 0

    def test_version2_bare_float_entries_still_load(self):
        # Pre-visit payloads store bare floats; they load with visits 0.
        payload = {"'s'": {"'a'": 1.25}}
        restored = qtable_from_dict(payload)
        assert restored.get("s", "a") == 1.25
        assert restored.visits("s", "a") == 0

    def test_snapshot_round_trip_keeps_visits(self):
        table = QTable()
        table.set((1, 2), (0,), -0.5, visits=9)
        restored = tables_from_payload(tables_to_payload({("top",): table}))
        assert restored[("top",)].visits((1, 2), (0,)) == 9
