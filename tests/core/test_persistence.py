"""Tests for Q-table save/load round trips."""

import pytest

from repro.core import MultiLevelPlacer, QTable
from repro.core.persistence import (
    load_placer_tables,
    qtable_from_dict,
    qtable_to_dict,
    save_placer_tables,
)
from repro.layout import PlacementEnv
from repro.netlist import current_mirror, five_transistor_ota


def area_objective(placement):
    return float(placement.area_cells())


class TestQTableRoundTrip:
    def test_empty_table(self):
        table = QTable()
        assert qtable_from_dict(qtable_to_dict(table)).n_entries == 0

    def test_tuple_states_and_actions(self):
        table = QTable()
        table.set(((0, 1, 2), (1, 0, 0)), (3, 7), 1.5)
        table.set("string_state", ("unit", 2, 4), -0.25)
        restored = qtable_from_dict(qtable_to_dict(table))
        assert restored.get(((0, 1, 2), (1, 0, 0)), (3, 7)) == 1.5
        assert restored.get("string_state", ("unit", 2, 4)) == -0.25
        assert restored.n_entries == table.n_entries

    def test_nested_structures(self):
        table = QTable()
        state = (("a", 0, 1), ("b", 2, 3), ("c", 4, 5))
        table.set(state, (0, 0), 0.125)
        restored = qtable_from_dict(qtable_to_dict(table))
        assert restored.state_value(state) == 0.125


class TestPlacerRoundTrip:
    def test_save_load_preserves_learning(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=60)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        env2 = PlacementEnv(five_transistor_ota(), area_objective)
        fresh = MultiLevelPlacer(env2, seed=1)
        load_placer_tables(fresh, path)

        assert (fresh.top_agent.table.n_entries
                == placer.top_agent.table.n_entries)
        for name, agent in placer.bottom_agents.items():
            twin = fresh.bottom_agents[name]
            assert twin.table.n_entries == agent.table.n_entries
            assert twin.steps == agent.steps

    def test_resumed_placer_still_optimizes(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=40)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        env2 = PlacementEnv(five_transistor_ota(), area_objective)
        resumed = MultiLevelPlacer(env2, seed=2)
        load_placer_tables(resumed, path)
        result = resumed.optimize(max_steps=40)
        assert result.best_cost <= result.initial_cost

    def test_group_mismatch_rejected(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=20)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        other_env = PlacementEnv(current_mirror(), area_objective)
        other = MultiLevelPlacer(other_env, seed=1)
        with pytest.raises(ValueError, match="groups"):
            load_placer_tables(other, path)
