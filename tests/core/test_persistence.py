"""Tests for Q-table save/load round trips."""

import pytest

from repro.core import MultiLevelPlacer, QTable
from repro.core.persistence import (
    load_placer_tables,
    qtable_from_dict,
    qtable_to_dict,
    save_placer_tables,
)
from repro.layout import PlacementEnv
from repro.netlist import current_mirror, five_transistor_ota


def area_objective(placement):
    return float(placement.area_cells())


class TestQTableRoundTrip:
    def test_empty_table(self):
        table = QTable()
        assert qtable_from_dict(qtable_to_dict(table)).n_entries == 0

    def test_tuple_states_and_actions(self):
        table = QTable()
        table.set(((0, 1, 2), (1, 0, 0)), (3, 7), 1.5)
        table.set("string_state", ("unit", 2, 4), -0.25)
        restored = qtable_from_dict(qtable_to_dict(table))
        assert restored.get(((0, 1, 2), (1, 0, 0)), (3, 7)) == 1.5
        assert restored.get("string_state", ("unit", 2, 4)) == -0.25
        assert restored.n_entries == table.n_entries

    def test_nested_structures(self):
        table = QTable()
        state = (("a", 0, 1), ("b", 2, 3), ("c", 4, 5))
        table.set(state, (0, 0), 0.125)
        restored = qtable_from_dict(qtable_to_dict(table))
        assert restored.state_value(state) == 0.125


class TestPlacerRoundTrip:
    def test_save_load_preserves_learning(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=60)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        env2 = PlacementEnv(five_transistor_ota(), area_objective)
        fresh = MultiLevelPlacer(env2, seed=1)
        load_placer_tables(fresh, path)

        assert (fresh.top_agent.table.n_entries
                == placer.top_agent.table.n_entries)
        for name, agent in placer.bottom_agents.items():
            twin = fresh.bottom_agents[name]
            assert twin.table.n_entries == agent.table.n_entries
            assert twin.steps == agent.steps

    def test_resumed_placer_still_optimizes(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=40)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        env2 = PlacementEnv(five_transistor_ota(), area_objective)
        resumed = MultiLevelPlacer(env2, seed=2)
        load_placer_tables(resumed, path)
        result = resumed.optimize(max_steps=40)
        assert result.best_cost <= result.initial_cost

    def test_midrun_snapshot_resumes_identical_trajectory(self, tmp_path):
        """Save mid-campaign, restore into a fresh placer, and the resumed
        half runs *identically* to the uninterrupted one: snapshots carry
        tables, schedule steps and RNG states — the whole learning state."""
        # Uninterrupted: one placer, two optimize legs.
        env_a = PlacementEnv(five_transistor_ota(), area_objective)
        uninterrupted = MultiLevelPlacer(env_a, seed=13)
        uninterrupted.optimize(max_steps=50)
        second_leg = uninterrupted.optimize(max_steps=50)

        # Interrupted: run the first leg, snapshot, resume elsewhere.
        env_b = PlacementEnv(five_transistor_ota(), area_objective)
        first = MultiLevelPlacer(env_b, seed=13)
        first.optimize(max_steps=50)
        path = tmp_path / "snapshot.json"
        save_placer_tables(first, path)

        env_c = PlacementEnv(five_transistor_ota(), area_objective)
        resumed_placer = MultiLevelPlacer(env_c, seed=999)  # seed overwritten
        load_placer_tables(resumed_placer, path)
        resumed = resumed_placer.optimize(max_steps=50)

        assert resumed.best_cost == second_leg.best_cost
        assert resumed.steps == second_leg.steps
        assert [c for __, c in resumed.history] == [
            c for __, c in second_leg.history]
        assert (resumed.best_placement.as_dict()
                == second_leg.best_placement.as_dict())

    def test_rng_state_round_trips(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=4)
        placer.optimize(max_steps=25)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        twin = MultiLevelPlacer(
            PlacementEnv(five_transistor_ota(), area_objective), seed=4)
        load_placer_tables(twin, path)
        assert (twin.top_agent.rng.bit_generator.state
                == placer.top_agent.rng.bit_generator.state)
        draws_a = placer.top_agent.rng.random(5).tolist()
        draws_b = twin.top_agent.rng.random(5).tolist()
        assert draws_a == draws_b

    def test_table_only_snapshot_still_loads(self, tmp_path):
        """Backward compatibility: snapshots without RNG states load fine."""
        import json

        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=20)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)
        payload = json.loads(path.read_text())
        del payload["rng"]
        path.write_text(json.dumps(payload))

        fresh = MultiLevelPlacer(
            PlacementEnv(five_transistor_ota(), area_objective), seed=1)
        load_placer_tables(fresh, path)
        assert (fresh.top_agent.table.n_entries
                == placer.top_agent.table.n_entries)

    def test_group_mismatch_rejected(self, tmp_path):
        env = PlacementEnv(five_transistor_ota(), area_objective)
        placer = MultiLevelPlacer(env, seed=1)
        placer.optimize(max_steps=20)
        path = tmp_path / "tables.json"
        save_placer_tables(placer, path)

        other_env = PlacementEnv(current_mirror(), area_objective)
        other = MultiLevelPlacer(other_env, seed=1)
        with pytest.raises(ValueError, match="groups"):
            load_placer_tables(other, path)
