"""Integration tests for all placers on a cheap geometric objective.

Using wirelength/area objectives (no simulator) keeps these tests fast
while exercising the full optimization machinery; simulator-in-the-loop
runs are covered by tests/experiments and the benchmarks.
"""

import pytest

from repro.core import (
    EpsilonSchedule,
    FlatQPlacer,
    MultiLevelPlacer,
    Placer,
    PlacerResult,
    RandomSearchPlacer,
    SimulatedAnnealingPlacer,
)
from repro.layout import PlacementEnv
from repro.netlist import current_mirror, five_transistor_ota
from repro.route import total_wirelength
from repro.tech import generic_tech_40

TECH = generic_tech_40()


def wirelength_objective(block):
    def cost(placement):
        return total_wirelength(block.circuit, placement, TECH) * 1e6
    return cost


def make_env(builder=five_transistor_ota):
    block = builder()
    return PlacementEnv(block, wirelength_objective(block))


ALL_PLACERS = [
    MultiLevelPlacer,
    FlatQPlacer,
    SimulatedAnnealingPlacer,
    RandomSearchPlacer,
]


@pytest.mark.parametrize("placer_cls", ALL_PLACERS)
class TestEveryPlacer:
    def test_satisfies_protocol(self, placer_cls):
        placer = placer_cls(make_env(), seed=0)
        assert isinstance(placer, Placer)

    def test_improves_or_matches_initial(self, placer_cls):
        placer = placer_cls(make_env(), seed=0)
        result = placer.optimize(max_steps=120)
        assert result.best_cost <= result.initial_cost
        assert isinstance(result, PlacerResult)

    def test_best_placement_matches_best_cost(self, placer_cls):
        env = make_env()
        placer = placer_cls(env, seed=0)
        result = placer.optimize(max_steps=120)
        recomputed = env.objective(result.best_placement)
        assert recomputed == pytest.approx(result.best_cost)

    def test_respects_sim_budget(self, placer_cls):
        placer = placer_cls(make_env(), seed=0)
        result = placer.optimize(max_steps=10_000, sim_budget=50)
        assert result.sims_used <= 60  # small overshoot for in-flight step

    def test_history_monotone_decreasing(self, placer_cls):
        placer = placer_cls(make_env(), seed=1)
        result = placer.optimize(max_steps=120)
        costs = [c for __, c in result.history]
        assert all(costs[i + 1] <= costs[i] for i in range(len(costs) - 1))

    def test_deterministic_given_seed(self, placer_cls):
        r1 = placer_cls(make_env(), seed=7).optimize(max_steps=80)
        r2 = placer_cls(make_env(), seed=7).optimize(max_steps=80)
        assert r1.best_cost == pytest.approx(r2.best_cost)
        assert r1.sims_used == r2.sims_used

    def test_stop_at_target(self, placer_cls):
        env = make_env()
        placer = placer_cls(env, seed=0)
        # A generous target: the initial cost itself (hit immediately).
        env.reset()
        initial = env.cost()
        result = placer.optimize(max_steps=500, target=initial * 2,
                                 stop_at_target=True)
        assert result.reached_target
        assert result.sims_to_target is not None


class TestMultiLevelSpecifics:
    def test_table_sizes_reported(self):
        placer = MultiLevelPlacer(make_env(), seed=0)
        result = placer.optimize(max_steps=60)
        diag = result.diagnostics
        assert diag["top_entries"] >= 0
        assert set(diag["bottom_entries"]) == {"tail", "input_pair", "pload"}
        assert diag["total_entries"] > 0

    def test_revert_disabled_accepts_everything(self):
        env = make_env()
        placer = MultiLevelPlacer(env, worse_tolerance=None, seed=0)
        result = placer.optimize(max_steps=100)
        assert result.best_cost <= result.initial_cost

    def test_bad_episode_length_rejected(self):
        with pytest.raises(ValueError, match="episode_length"):
            MultiLevelPlacer(make_env(), episode_length=0)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="worse_tolerance"):
            MultiLevelPlacer(make_env(), worse_tolerance=-0.1)

    def test_bad_max_steps_rejected(self):
        with pytest.raises(ValueError, match="max_steps"):
            MultiLevelPlacer(make_env(), seed=0).optimize(max_steps=0)

    def test_episodes_reset_environment(self):
        env = make_env()
        placer = MultiLevelPlacer(env, episode_length=10, seed=0)
        placer.optimize(max_steps=35)
        # After 3 episode boundaries the run ends mid-episode; we only
        # check the machinery ran without corrupting the placement.
        assert len(env.placement) == env.block.circuit.total_units()

    def test_hierarchy_beats_flat_on_table_size(self):
        """The scalability claim: for the same step budget the flat agent's
        table has at least as many state entries (it replicates the whole
        placement in every state)."""
        env1, env2 = make_env(current_mirror), make_env(current_mirror)
        eps = EpsilonSchedule(0.9, 0.05, 150)
        multi = MultiLevelPlacer(env1, epsilon=eps, seed=3)
        flat = FlatQPlacer(env2, epsilon=eps, seed=3)
        rm = multi.optimize(max_steps=250)
        rf = flat.optimize(max_steps=250)
        assert rf.diagnostics["states"] >= max(
            rm.diagnostics["top_states"], 1
        )


class TestSimulatedAnnealingSpecifics:
    def test_acceptance_rate_reported(self):
        placer = SimulatedAnnealingPlacer(make_env(), seed=0)
        result = placer.optimize(max_steps=150)
        assert 0.0 < result.diagnostics["acceptance_rate"] <= 1.0

    def test_invalid_temperatures_rejected(self):
        with pytest.raises(ValueError, match="t_end_frac"):
            SimulatedAnnealingPlacer(make_env(), t_start_frac=0.1, t_end_frac=0.5)

    def test_invalid_p_group_rejected(self):
        with pytest.raises(ValueError, match="p_group_move"):
            SimulatedAnnealingPlacer(make_env(), p_group_move=1.5)

    def test_cooling_reduces_acceptance(self):
        env = make_env()
        placer = SimulatedAnnealingPlacer(env, seed=0)
        placer.optimize(max_steps=300)
        # Not a strict guarantee per-run, but with geometric cooling the
        # overall acceptance must be well below 100 %.
        assert placer.accepted < placer.proposed
