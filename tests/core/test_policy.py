"""Tests for epsilon scheduling and action selection."""

import numpy as np
import pytest

from repro.core import EpsilonSchedule, epsilon_greedy


class TestEpsilonSchedule:
    def test_starts_at_start(self):
        sched = EpsilonSchedule(start=0.9, end=0.1, decay_steps=100)
        assert sched.value(0) == pytest.approx(0.9)

    def test_ends_at_end(self):
        sched = EpsilonSchedule(start=0.9, end=0.1, decay_steps=100)
        assert sched.value(100) == pytest.approx(0.1)
        assert sched.value(10_000) == pytest.approx(0.1)

    def test_monotone_decay(self):
        sched = EpsilonSchedule(start=0.9, end=0.1, decay_steps=50)
        values = [sched.value(k) for k in range(60)]
        assert all(values[i + 1] <= values[i] for i in range(len(values) - 1))

    def test_midpoint(self):
        sched = EpsilonSchedule(start=1.0, end=0.0, decay_steps=10)
        assert sched.value(5) == pytest.approx(0.5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="end"):
            EpsilonSchedule(start=0.1, end=0.9)
        with pytest.raises(ValueError, match="decay_steps"):
            EpsilonSchedule(decay_steps=0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            EpsilonSchedule().value(-1)


class TestEpsilonGreedy:
    def test_no_actions_rejected(self):
        with pytest.raises(ValueError, match="legal actions"):
            epsilon_greedy({}, [], 0.5, np.random.default_rng(0))

    def test_greedy_picks_best(self):
        rng = np.random.default_rng(0)
        q = {"a": 1.0, "b": 5.0, "c": -2.0}
        for __ in range(20):
            assert epsilon_greedy(q, ["a", "b", "c"], 0.0, rng) == "b"

    def test_unknown_actions_default_zero(self):
        rng = np.random.default_rng(0)
        q = {"a": -1.0}
        # "b" is unseen (0.0) and beats a's -1.
        for __ in range(20):
            assert epsilon_greedy(q, ["a", "b"], 0.0, rng) == "b"

    def test_full_exploration_uniform(self):
        rng = np.random.default_rng(0)
        q = {"a": 100.0}
        picks = [epsilon_greedy(q, ["a", "b"], 1.0, rng) for __ in range(400)]
        assert 100 < picks.count("b") < 300

    def test_ties_broken_randomly(self):
        rng = np.random.default_rng(0)
        picks = {epsilon_greedy({}, ["a", "b", "c"], 0.0, rng) for __ in range(100)}
        assert picks == {"a", "b", "c"}
