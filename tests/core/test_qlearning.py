"""Tests for the Q-table and the Bellman update against hand calculations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EpsilonSchedule, MergeStats, QAgent, QTable


class TestQTable:
    def test_default_zero(self):
        table = QTable()
        assert table.get("s", "a") == 0.0
        assert table.state_value("s") == 0.0

    def test_set_get(self):
        table = QTable()
        table.set("s", "a", 2.5)
        assert table.get("s", "a") == 2.5

    def test_state_value_is_max(self):
        table = QTable()
        table.set("s", "a", 1.0)
        table.set("s", "b", 3.0)
        table.set("s", "c", -2.0)
        assert table.state_value("s") == 3.0

    def test_sizes(self):
        table = QTable()
        table.set("s1", "a", 1.0)
        table.set("s1", "b", 1.0)
        table.set("s2", "a", 1.0)
        assert table.n_states == 2
        assert table.n_entries == 3


class TestBellmanUpdate:
    def test_hand_computed_update(self):
        # Q <- (1-a) Q + a [r + g V(s')], paper Eq. (1).
        agent = QAgent(alpha=0.5, gamma=0.9, rng=np.random.default_rng(0))
        agent.table.set("s1", "x", 2.0)
        agent.table.set("s2", "y", 4.0)  # V(s2) = 4
        new = agent.learn("s1", "x", reward=1.0, next_state="s2")
        expected = 0.5 * 2.0 + 0.5 * (1.0 + 0.9 * 4.0)
        assert new == pytest.approx(expected)
        assert agent.table.get("s1", "x") == pytest.approx(expected)

    def test_unseen_next_state_bootstraps_zero(self):
        agent = QAgent(alpha=1.0, gamma=0.9)
        new = agent.learn("s", "a", reward=2.0, next_state="never_seen")
        assert new == pytest.approx(2.0)

    def test_repeated_updates_converge_to_fixed_point(self):
        # Constant reward r, self-loop: Q* = r / (1 - gamma).
        agent = QAgent(alpha=0.5, gamma=0.5)
        for __ in range(200):
            agent.learn("s", "a", reward=1.0, next_state="s")
        assert agent.table.get("s", "a") == pytest.approx(2.0, rel=1e-6)

    def test_invalid_hyperparams_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            QAgent(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            QAgent(alpha=1.5)
        with pytest.raises(ValueError, match="gamma"):
            QAgent(gamma=1.0)


class TestSelection:
    def test_select_advances_own_counter(self):
        agent = QAgent(epsilon=EpsilonSchedule(1.0, 0.0, 10))
        for __ in range(5):
            agent.select("s", ["a"])
        assert agent.steps == 5

    def test_global_step_overrides_schedule_position(self):
        agent = QAgent(epsilon=EpsilonSchedule(1.0, 0.0, 10),
                       rng=np.random.default_rng(1))
        agent.table.set("s", "best", 10.0)
        # At global step >= 10 epsilon is 0: always greedy.
        picks = {agent.select("s", ["best", "other"], step=10) for __ in range(50)}
        assert picks == {"best"}

    def test_deterministic_given_seed(self):
        a = QAgent(rng=np.random.default_rng(42))
        b = QAgent(rng=np.random.default_rng(42))
        actions = ["x", "y", "z"]
        seq_a = [a.select("s", actions) for __ in range(20)]
        seq_b = [b.select("s", actions) for __ in range(20)]
        assert seq_a == seq_b


class TestTableItemsAndMerge:
    def test_items_walks_all_entries(self):
        table = QTable()
        table.set("s1", "a", 1.0)
        table.set("s1", "b", 2.0)
        table.set("s2", "a", 3.0)
        assert sorted(table.items()) == [
            ("s1", "a", 1.0), ("s1", "b", 2.0), ("s2", "a", 3.0)]

    def test_items_empty_table(self):
        assert list(QTable().items()) == []

    def test_merge_theirs_overwrites(self):
        ours, theirs = QTable(), QTable()
        ours.set("s", "a", 1.0)
        ours.set("s", "b", 5.0)
        theirs.set("s", "a", 2.0)
        theirs.set("t", "c", 3.0)
        ours.merge(theirs)
        assert ours.get("s", "a") == 2.0
        assert ours.get("s", "b") == 5.0
        assert ours.get("t", "c") == 3.0

    def test_merge_ours_keeps_local(self):
        ours, theirs = QTable(), QTable()
        ours.set("s", "a", 1.0)
        theirs.set("s", "a", 2.0)
        theirs.set("s", "b", 4.0)
        ours.merge(theirs, how="ours")
        assert ours.get("s", "a") == 1.0
        assert ours.get("s", "b") == 4.0

    def test_merge_max_is_optimistic(self):
        ours, theirs = QTable(), QTable()
        ours.set("s", "a", 1.0)
        ours.set("s", "b", 9.0)
        theirs.set("s", "a", 2.0)
        theirs.set("s", "b", -1.0)
        ours.merge(theirs, how="max")
        assert ours.get("s", "a") == 2.0
        assert ours.get("s", "b") == 9.0

    def test_merge_rejects_unknown_rule(self):
        with pytest.raises(ValueError, match="how"):
            QTable().merge(QTable(), how="average")

    def test_merge_reports_statistics(self):
        ours, theirs = QTable(), QTable()
        ours.set("s", "a", 1.0)   # updated by theirs
        ours.set("s", "b", 5.0)   # kept (identical value)
        theirs.set("s", "a", 2.0)
        theirs.set("s", "b", 5.0)
        theirs.set("t", "c", 3.0)  # added
        stats = ours.merge(theirs)
        assert (stats.added, stats.updated, stats.kept) == (1, 1, 1)
        assert stats.total == 3

    def test_merge_max_counts_losing_entries_as_kept(self):
        ours, theirs = QTable(), QTable()
        ours.set("s", "a", 9.0)
        theirs.set("s", "a", 2.0)
        stats = ours.merge(theirs, how="max")
        assert (stats.added, stats.updated, stats.kept) == (0, 0, 1)

    def test_merge_stats_accumulate(self):
        total = MergeStats()
        total += MergeStats(added=2, updated=1, kept=3)
        total += MergeStats(added=1)
        assert (total.added, total.updated, total.kept) == (3, 1, 3)

    def test_set_coerces_numpy_scalars(self):
        table = QTable()
        table.set("s", "a", np.float64(1.5))
        value = table.get("s", "a")
        assert type(value) is float and value == 1.5

    def test_copy_is_independent(self):
        table = QTable()
        table.set("s", "a", 1.0)
        dup = table.copy()
        dup.set("s", "a", 9.0)
        dup.set("t", "b", 2.0)
        assert table.get("s", "a") == 1.0
        assert table.n_entries == 1


def _entries(table):
    return sorted(table.items())


def _table_from(entries):
    table = QTable()
    for state, action, value in entries:
        table.set(state, action, value)
    return table


# Small discrete key space so tables genuinely collide.
_entry = st.tuples(
    st.integers(min_value=0, max_value=3),   # state
    st.integers(min_value=0, max_value=2),   # action
    st.floats(min_value=-10, max_value=10, allow_nan=False),
)
_tables = st.lists(_entry, max_size=12).map(_table_from)


class TestMergeProperties:
    @given(table=_tables, how=st.sampled_from(["theirs", "ours", "max"]))
    @settings(max_examples=60, deadline=None)
    def test_self_merge_is_idempotent(self, table, how):
        before = _entries(table)
        stats = table.merge(table.copy(), how=how)
        assert _entries(table) == before
        assert stats.added == 0 and stats.updated == 0
        assert stats.kept == len(before)

    @given(a=_tables, b=_tables)
    @settings(max_examples=60, deadline=None)
    def test_max_merge_commutes(self, a, b):
        ab, ba = a.copy(), b.copy()
        ab.merge(b, how="max")
        ba.merge(a, how="max")
        assert _entries(ab) == _entries(ba)

    @given(a=_tables, b=_tables)
    @settings(max_examples=60, deadline=None)
    def test_theirs_merge_absorbs_other(self, a, b):
        merged = a.copy()
        merged.merge(b, how="theirs")
        for state, action, value in b.items():
            assert merged.get(state, action) == value

    @given(a=_tables, b=_tables)
    @settings(max_examples=60, deadline=None)
    def test_merge_never_loses_entries(self, a, b):
        keys = {(s, x) for s, x, __ in a.items()}
        keys |= {(s, x) for s, x, __ in b.items()}
        merged = a.copy()
        merged.merge(b, how="max")
        assert merged.n_entries == len(keys)


class TestVisitCounts:
    def test_record_bumps_visits_set_does_not(self):
        table = QTable()
        table.record("s", "a", 1.0)
        table.record("s", "a", 2.0)
        table.set("s", "a", 3.0)
        assert table.visits("s", "a") == 2
        assert table.get("s", "a") == 3.0
        assert table.visits("s", "b") == 0

    def test_set_with_explicit_visits(self):
        table = QTable()
        table.set("s", "a", 1.0, visits=7)
        assert table.visits("s", "a") == 7

    def test_entries_carry_visits(self):
        table = QTable()
        table.record("s", "a", 1.0)
        table.set("s", "b", 2.0)
        assert sorted(table.entries()) == [
            ("s", "a", 1.0, 1), ("s", "b", 2.0, 0)]

    def test_copy_is_visit_independent(self):
        table = QTable()
        table.record("s", "a", 1.0)
        dup = table.copy()
        dup.record("s", "a", 2.0)
        assert table.visits("s", "a") == 1
        assert dup.visits("s", "a") == 2

    def test_agent_learn_counts_visits(self):
        agent = QAgent()
        agent.learn("s", "a", reward=1.0, next_state="t")
        agent.learn("s", "a", reward=1.0, next_state="t")
        assert agent.table.visits("s", "a") == 2


class TestVisitsMerge:
    def test_weighted_average(self):
        ours, theirs = QTable(), QTable()
        ours.set("s", "a", 1.0, visits=3)
        theirs.set("s", "a", 5.0, visits=1)
        stats = ours.merge(theirs, how="visits")
        assert ours.get("s", "a") == (1.0 * 3 + 5.0 * 1) / 4
        assert ours.visits("s", "a") == 4
        assert (stats.added, stats.updated, stats.kept) == (0, 1, 0)

    def test_zero_visits_fall_back_to_theirs(self):
        ours, theirs = QTable(), QTable()
        ours.set("s", "a", 1.0)
        theirs.set("s", "a", 5.0)
        ours.merge(theirs, how="visits")
        assert ours.get("s", "a") == 5.0

    def test_added_entries_keep_their_visits(self):
        ours, theirs = QTable(), QTable()
        theirs.set("s", "a", 5.0, visits=4)
        ours.merge(theirs, how="visits")
        assert ours.get("s", "a") == 5.0
        assert ours.visits("s", "a") == 4

    def test_visits_sum_under_every_rule(self):
        for how in ("theirs", "ours", "max", "visits"):
            ours, theirs = QTable(), QTable()
            ours.set("s", "a", 1.0, visits=2)
            theirs.set("s", "a", 2.0, visits=3)
            ours.merge(theirs, how=how)
            assert ours.visits("s", "a") == 5, how

    @given(a=_tables, b=_tables)
    @settings(max_examples=60, deadline=None)
    def test_visits_merge_of_two_tables_commutes(self, a, b):
        # record() every entry once so weights are non-trivial.
        for table in (a, b):
            for state, action, value in list(table.items()):
                table.record(state, action, value)
        ab, ba = a.copy(), b.copy()
        ab.merge(b, how="visits")
        ba.merge(a, how="visits")
        assert _entries(ab) == _entries(ba)


class TestPrune:
    def _table(self):
        table = QTable()
        table.set("s", "hot", 5.0, visits=10)
        table.set("s", "stale", 4.0, visits=1)
        table.set("t", "tiny", 1e-9, visits=10)
        return table

    def test_default_prune_keeps_everything(self):
        table = self._table()
        stats = table.prune()
        assert (stats.kept, stats.dropped) == (3, 0)
        assert table.n_entries == 3

    def test_min_visits_drops_stale(self):
        table = self._table()
        stats = table.prune(min_visits=2)
        assert (stats.kept, stats.dropped) == (2, 1)
        assert table.get("s", "stale") == 0.0

    def test_min_abs_q_drops_negligible_and_empties_states(self):
        table = self._table()
        stats = table.prune(min_abs_q=1e-6)
        assert (stats.kept, stats.dropped) == (2, 1)
        assert table.n_states == 1  # state "t" vanished entirely

    def test_negative_q_survives_abs_threshold(self):
        table = QTable()
        table.set("s", "a", -3.0, visits=5)
        assert table.prune(min_abs_q=1.0).kept == 1

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError, match="min_visits"):
            QTable().prune(min_visits=-1)
        with pytest.raises(ValueError, match="min_abs_q"):
            QTable().prune(min_abs_q=-0.5)
