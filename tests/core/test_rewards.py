"""Tests for reward shaping."""

import pytest

from repro.core import RewardConfig, shaped_reward


class TestShapedReward:
    def test_improvement_positive(self):
        assert shaped_reward(2.0, 1.0, reference_cost=2.0) == pytest.approx(0.5)

    def test_worsening_negative(self):
        assert shaped_reward(1.0, 2.0, reference_cost=2.0) == pytest.approx(-0.5)

    def test_no_change_zero(self):
        assert shaped_reward(1.0, 1.0, reference_cost=2.0) == 0.0

    def test_scale(self):
        cfg = RewardConfig(scale=10.0)
        assert shaped_reward(2.0, 1.0, 2.0, config=cfg) == pytest.approx(5.0)

    def test_target_bonus_on_crossing(self):
        cfg = RewardConfig(target_bonus=5.0)
        r = shaped_reward(2.0, 0.9, reference_cost=2.0, target=1.0, config=cfg)
        assert r == pytest.approx(0.55 + 5.0)

    def test_no_bonus_when_already_below_target(self):
        cfg = RewardConfig(target_bonus=5.0)
        r = shaped_reward(0.8, 0.7, reference_cost=2.0, target=1.0, config=cfg)
        assert r == pytest.approx(0.05)

    def test_step_penalty(self):
        cfg = RewardConfig(step_penalty=0.01)
        assert shaped_reward(1.0, 1.0, 2.0, config=cfg) == pytest.approx(-0.01)

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError, match="reference_cost"):
            shaped_reward(1.0, 0.5, reference_cost=0.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            RewardConfig(scale=0.0)
        with pytest.raises(ValueError, match="negative"):
            RewardConfig(target_bonus=-1.0)
