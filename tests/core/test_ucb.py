"""UCB exploration: deterministic, visit-aware, epsilon-free."""

import numpy as np
import pytest

from repro.core.policy import ucb_select, ucb_topk
from repro.core.qlearning import EXPLORATIONS, QAgent


class TestUcbSelect:
    def test_unvisited_beats_equal_q_visited(self):
        # Equal Q estimates: the action with no evidence gets the larger
        # bonus and must be tried first.
        action = ucb_select({"a": 1.0, "b": 1.0}, {"a": 50}, ["a", "b"], t=10)
        assert action == "b"

    def test_heavy_evidence_is_trusted(self):
        # A well-visited high-Q action beats an unvisited one once the
        # value gap dwarfs the bonus.
        action = ucb_select({"a": 5.0, "b": 0.0}, {"a": 200, "b": 0},
                            ["a", "b"], t=10, c=0.5)
        assert action == "a"

    def test_c_zero_is_pure_greedy_with_stable_ties(self):
        assert ucb_select({}, {}, ["x", "y", "z"], t=0, c=0.0) == "x"
        assert ucb_select({"y": 1.0}, {}, ["x", "y", "z"], t=0, c=0.0) == "y"

    def test_deterministic(self):
        picks = {ucb_select({"a": 0.3}, {"a": 2}, ["a", "b", "c"], t=7)
                 for _ in range(20)}
        assert len(picks) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="legal"):
            ucb_select({}, {}, [], t=0)
        with pytest.raises(ValueError, match="step"):
            ucb_select({}, {}, ["a"], t=-1)
        with pytest.raises(ValueError, match="constant"):
            ucb_select({}, {}, ["a"], t=0, c=-0.5)


class TestUcbTopk:
    def test_k1_is_select(self):
        q, n, legal = {"a": 1.0, "b": 2.0}, {"b": 9}, ["a", "b", "c"]
        assert ucb_topk(q, n, legal, t=3, c=0.5, k=1) \
            == [ucb_select(q, n, legal, t=3, c=0.5)]

    def test_ranked_extras_cover_all_legal(self):
        out = ucb_topk({"a": 1.0}, {}, ["a", "b", "c"], t=0, c=0.5, k=3)
        assert sorted(out) == ["a", "b", "c"]
        assert out[0] == ucb_select({"a": 1.0}, {}, ["a", "b", "c"], t=0)

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k"):
            ucb_topk({}, {}, ["a"], t=0, c=0.5, k=0)


class TestQAgentUcbMode:
    def test_mode_registry_and_validation(self):
        assert EXPLORATIONS == ("epsilon", "ucb")
        with pytest.raises(ValueError, match="exploration"):
            QAgent(exploration="boltzmann")
        with pytest.raises(ValueError, match="ucb_c"):
            QAgent(exploration="ucb", ucb_c=-1.0)

    def test_select_consumes_no_rng(self):
        agent = QAgent(exploration="ucb", rng=np.random.default_rng(42))
        before = agent.rng.bit_generator.state
        agent.select("s", [0, 1, 2])
        agent.select_many("s", [0, 1, 2], k=2)
        assert agent.rng.bit_generator.state == before
        assert agent.steps == 2

    def test_visits_steer_selection(self):
        agent = QAgent(exploration="ucb")
        # Both actions look equally good; visiting one must push the
        # agent to the other.
        agent.table.set("s", 0, 1.0, visits=30)
        agent.table.set("s", 1, 1.0, visits=1)
        assert agent.select("s", [0, 1]) == 1

    def test_two_ucb_agents_agree_exactly(self):
        # Determinism across instances: no RNG, no hidden state beyond
        # the step counter.
        a, b = QAgent(exploration="ucb"), QAgent(exploration="ucb")
        for table in (a.table, b.table):
            table.set("s", 0, 0.4, visits=3)
            table.set("s", 1, 0.2, visits=1)
        trace_a = [a.select("s", [0, 1, 2]) for _ in range(10)]
        trace_b = [b.select("s", [0, 1, 2]) for _ in range(10)]
        assert trace_a == trace_b

    def test_epsilon_mode_unchanged_default(self):
        agent = QAgent()
        assert agent.exploration == "epsilon"
