"""Tests for the placers' shared-policy API (export/warm-start)."""

import pytest

from repro.core import FlatQPlacer, MultiLevelPlacer, QTable
from repro.layout import PlacementEnv
from repro.netlist import five_transistor_ota


def area_objective(placement):
    return float(placement.area_cells())


def make_placer(cls=MultiLevelPlacer, seed=1):
    env = PlacementEnv(five_transistor_ota(), area_objective)
    return cls(env, seed=seed)


class TestExportTables:
    def test_addresses_cover_all_agents(self):
        placer = make_placer()
        placer.optimize(max_steps=30)
        tables = placer.export_tables()
        assert ("top",) in tables
        groups = {name for kind, *rest in tables for name in rest
                  if kind == "bottom"}
        assert groups == set(placer.bottom_agents)

    def test_export_is_a_copy(self):
        placer = make_placer()
        placer.optimize(max_steps=30)
        tables = placer.export_tables()
        tables[("top",)].set("poison", "x", 99.0)
        assert placer.top_agent.table.get("poison", "x") == 0.0

    def test_flat_placer_single_address(self):
        placer = make_placer(FlatQPlacer)
        placer.optimize(max_steps=20)
        tables = placer.export_tables()
        assert set(tables) == {("agent",)}
        assert sorted(tables[("agent",)].items()) == sorted(
            placer.agent.table.items())


class TestWarmStartFrom:
    def test_round_trip_reproduces_tables(self):
        trained = make_placer()
        trained.optimize(max_steps=40)
        snapshot = trained.export_tables()

        fresh = make_placer(seed=7)
        stats = fresh.warm_start_from(snapshot)
        assert sorted(fresh.top_agent.table.items()) == sorted(
            trained.top_agent.table.items())
        for name, agent in trained.bottom_agents.items():
            assert sorted(fresh.bottom_agents[name].table.items()) == sorted(
                agent.table.items())
        assert sum(s.added for s in stats.values()) == sum(
            t.n_entries for t in snapshot.values())

    def test_partial_snapshot_allowed(self):
        trained = make_placer()
        trained.optimize(max_steps=30)
        snapshot = {("top",): trained.export_tables()[("top",)]}
        fresh = make_placer(seed=2)
        stats = fresh.warm_start_from(snapshot)
        assert set(stats) == {("top",)}
        assert all(a.table.n_entries == 0
                   for a in fresh.bottom_agents.values())

    def test_unknown_address_rejected(self):
        fresh = make_placer()
        bogus = QTable()
        bogus.set("s", "a", 1.0)
        with pytest.raises(ValueError, match="unknown agents"):
            fresh.warm_start_from({("bottom", "no_such_group"): bogus})
        with pytest.raises(ValueError, match="unknown agents"):
            make_placer(FlatQPlacer).warm_start_from({("top",): bogus})

    def test_merge_how_forwarded(self):
        fresh = make_placer()
        fresh.top_agent.table.set("s", "a", 5.0)
        snapshot = {("top",): QTable()}
        snapshot[("top",)].set("s", "a", 1.0)
        fresh.warm_start_from(snapshot, how="max")
        assert fresh.top_agent.table.get("s", "a") == 5.0
        fresh.warm_start_from(snapshot, how="theirs")
        assert fresh.top_agent.table.get("s", "a") == 1.0

    def test_warm_started_run_is_deterministic(self):
        trained = make_placer()
        trained.optimize(max_steps=40)
        snapshot = trained.export_tables()

        a = make_placer(seed=3)
        a.warm_start_from(snapshot)
        ra = a.optimize(max_steps=40)
        b = make_placer(seed=3)
        b.warm_start_from(snapshot)
        rb = b.optimize(max_steps=40)
        assert ra.best_cost == rb.best_cost
        assert ra.history == rb.history
