"""`PlacementEvaluator.evaluate_many` / `cost_many`: semantics + equivalence.

The batched entry point must be a drop-in for a sequential loop of
`evaluate` calls: same metrics (to solver tolerance), same cache
behavior, same `sim_count` = one per genuinely new placement, same
penalty handling when a placement fails to converge.
"""

import pytest

from repro.eval import FAILURE_PRIMARY, PlacementEvaluator
from repro.eval.suites import SUITES
from repro.layout import banded_placement
from repro.netlist import (
    comparator,
    current_mirror,
    folded_cascode_ota,
    two_stage_ota,
)
from repro.sim.dc import ConvergenceError

BLOCKS = {
    "cm": current_mirror,
    "comp": comparator,
    "ota": folded_cascode_ota,
    "ota2s": two_stage_ota,
}
STYLES = ("sequential", "ysym", "common_centroid")


def batch_for(block):
    return [banded_placement(block, style) for style in STYLES]


class TestEquivalence:
    @pytest.mark.parametrize("kind", sorted(BLOCKS))
    def test_matches_sequential_evaluate(self, kind):
        block = BLOCKS[kind]()
        sequential = PlacementEvaluator(block)
        batched = PlacementEvaluator(block)
        placements = batch_for(block)
        want = [sequential.evaluate(p) for p in placements]
        got = batched.evaluate_many(placements)
        for w, g in zip(want, got):
            assert set(w.values) == set(g.values)
            for key, value in w.values.items():
                assert g.values[key] == pytest.approx(
                    value, rel=1e-8, abs=1e-12), (kind, key)

    def test_cost_many_matches_cost(self):
        block = current_mirror()
        evaluator = PlacementEvaluator(block)
        placements = batch_for(block)
        want = [PlacementEvaluator(block).cost(p) for p in placements]
        got = evaluator.cost_many(placements)
        assert got == pytest.approx(want, rel=1e-8)

    def test_single_item_batch_is_sequential_path(self):
        block = current_mirror()
        a = PlacementEvaluator(block)
        b = PlacementEvaluator(block)
        p = banded_placement(block, "ysym")
        assert a.evaluate_many([p])[0].values == b.evaluate(p).values

    def test_legacy_engine_batches_too(self):
        block = current_mirror()
        compiled = PlacementEvaluator(block, engine="compiled")
        legacy = PlacementEvaluator(block, engine="legacy")
        placements = batch_for(block)
        want = compiled.evaluate_many(placements)
        got = legacy.evaluate_many(placements)
        for w, g in zip(want, got):
            assert g.primary_value == pytest.approx(
                w.primary_value, rel=1e-8)


class TestCountingSemantics:
    def test_each_miss_counts_once(self):
        evaluator = PlacementEvaluator(current_mirror())
        evaluator.evaluate_many(batch_for(evaluator.block))
        assert evaluator.sim_count == 3
        assert evaluator.cache_hits == 0

    def test_duplicates_in_batch_hit_cache(self):
        evaluator = PlacementEvaluator(current_mirror())
        p = banded_placement(evaluator.block, "ysym")
        q = banded_placement(evaluator.block, "sequential")
        metrics = evaluator.evaluate_many([p, p.copy(), q, p.copy()])
        assert evaluator.sim_count == 2
        assert evaluator.cache_hits == 2
        assert metrics[0] is metrics[1] is metrics[3]

    def test_precached_placements_hit_cache(self):
        evaluator = PlacementEvaluator(current_mirror())
        placements = batch_for(evaluator.block)
        evaluator.evaluate(placements[0])
        evaluator.evaluate_many(placements)
        assert evaluator.sim_count == 3
        assert evaluator.cache_hits == 1

    def test_all_cached_batch_simulates_nothing(self):
        evaluator = PlacementEvaluator(current_mirror())
        placements = batch_for(evaluator.block)
        evaluator.evaluate_many(placements)
        count = evaluator.sim_count
        evaluator.evaluate_many([p.copy() for p in placements])
        assert evaluator.sim_count == count
        assert evaluator.cache_hits == 3

    def test_empty_batch(self):
        evaluator = PlacementEvaluator(current_mirror())
        assert evaluator.evaluate_many([]) == []
        assert evaluator.sim_count == 0


class TestFailureSemantics:
    def test_failing_batch_penalises_only_failures(self, monkeypatch):
        """A batch-level failure re-prices sequentially: exactly the
        placement whose simulation fails gets the penalty metrics."""
        block = current_mirror()
        evaluator = PlacementEvaluator(block)
        placements = batch_for(block)
        bad_signature = placements[1].signature()
        real_suite = SUITES["cm"]

        def flaky(b, annotated, deltas, tech, placement, warm):
            if placement.signature() == bad_signature:
                raise ConvergenceError("injected failure")
            return real_suite(b, annotated, deltas, tech, placement, warm)

        monkeypatch.setattr(evaluator, "_suite", flaky)
        monkeypatch.setitem(
            __import__("repro.eval.evaluator", fromlist=["BATCH_SUITES"])
            .BATCH_SUITES, "cm",
            lambda *a, **k: (_ for _ in ()).throw(
                ConvergenceError("batch failure")),
        )
        metrics = evaluator.evaluate_many(placements)
        assert metrics[1].primary_value == FAILURE_PRIMARY
        assert metrics[0].primary_value < FAILURE_PRIMARY
        assert metrics[2].primary_value < FAILURE_PRIMARY
        assert evaluator.sim_failures == 1
        assert evaluator.sim_count == 3


class TestCacheEviction:
    def test_reinsert_does_not_evict_unrelated_entry(self):
        """Regression: re-storing an existing key must not pop the LRU tail."""
        evaluator = PlacementEvaluator(current_mirror(), cache_size=2)
        hot = banded_placement(evaluator.block, "sequential")
        cold = banded_placement(evaluator.block, "ysym")
        evaluator.evaluate(hot)
        metrics = evaluator.evaluate(cold)
        evaluator._store(cold.signature(), metrics)  # cache is full
        evaluator.evaluate(hot)
        assert evaluator.sim_count == 2  # hot was not evicted

    def test_batch_larger_than_cache_still_returns_all(self):
        evaluator = PlacementEvaluator(current_mirror(), cache_size=2)
        metrics = evaluator.evaluate_many(batch_for(evaluator.block))
        assert len(metrics) == 3
        assert all(m is not None for m in metrics)
        assert evaluator.sim_count == 3
