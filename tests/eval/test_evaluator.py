"""Integration tests for the PlacementEvaluator on all three circuits."""

import pytest

from repro.eval import PlacementEvaluator
from repro.layout import banded_placement
from repro.netlist import (
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
)
from repro.variation import default_variation_model


@pytest.fixture(scope="module")
def cm_eval():
    return PlacementEvaluator(current_mirror())


class TestPipeline:
    def test_cm_metrics_complete(self, cm_eval):
        p = banded_placement(cm_eval.block, "sequential")
        m = cm_eval.evaluate(p)
        for key in ("mismatch_pct", "area_um2", "power_w", "wirelength_um"):
            assert key in m

    def test_mismatch_nonnegative(self, cm_eval):
        p = banded_placement(cm_eval.block, "ysym")
        assert cm_eval.evaluate(p).primary_value >= 0

    def test_comp_metrics_complete(self):
        ev = PlacementEvaluator(comparator())
        m = ev.evaluate(banded_placement(ev.block, "sequential"))
        for key in ("offset_mv", "delay_s", "power_w", "area_um2"):
            assert key in m
        assert m["delay_s"] > 0
        assert m["power_w"] > 0

    def test_ota_metrics_complete(self):
        ev = PlacementEvaluator(folded_cascode_ota())
        m = ev.evaluate(banded_placement(ev.block, "sequential"))
        assert m["gain_db"] > 60      # healthy folded cascode
        assert m["gbw_hz"] > 1e6
        assert 45 < m["pm_deg"] < 120
        assert m["offset_mv"] < 50

    def test_deltas_for_covers_all_mosfets(self, cm_eval):
        p = banded_placement(cm_eval.block, "sequential")
        deltas = cm_eval.deltas_for(p)
        assert set(deltas) == {m.name for m in cm_eval.block.circuit.mosfets()}


class TestDeterminismAndCache:
    def test_deterministic(self):
        ev1 = PlacementEvaluator(current_mirror())
        ev2 = PlacementEvaluator(current_mirror())
        p = banded_placement(ev1.block, "common_centroid")
        assert (ev1.evaluate(p).primary_value
                == pytest.approx(ev2.evaluate(p).primary_value, rel=1e-12))

    def test_cache_prevents_recount(self):
        ev = PlacementEvaluator(current_mirror())
        p = banded_placement(ev.block, "sequential")
        ev.evaluate(p)
        assert ev.sim_count == 1
        ev.evaluate(p.copy())
        assert ev.sim_count == 1
        assert ev.cache_hits == 1

    def test_distinct_placements_count(self):
        ev = PlacementEvaluator(current_mirror())
        ev.evaluate(banded_placement(ev.block, "sequential"))
        ev.evaluate(banded_placement(ev.block, "ysym"))
        assert ev.sim_count == 2

    def test_reset_counters(self):
        ev = PlacementEvaluator(current_mirror())
        ev.evaluate(banded_placement(ev.block, "sequential"))
        ev.sim_failures = 3  # as if some runs had failed to converge
        ev.reset_counters()
        assert ev.sim_count == 0
        assert ev.cache_hits == 0
        assert ev.sim_failures == 0

    def test_lru_eviction_keeps_hot_entries(self):
        ev = PlacementEvaluator(current_mirror(), cache_size=2)
        hot = banded_placement(ev.block, "sequential")
        cold = banded_placement(ev.block, "ysym")
        ev.evaluate(hot)
        ev.evaluate(cold)
        ev.evaluate(hot)  # hit: must refresh recency, not leave FIFO order
        assert ev.sim_count == 2
        ev.evaluate(banded_placement(ev.block, "common_centroid"))  # evicts
        ev.evaluate(hot)
        assert ev.sim_count == 3  # hot survived; only `cold` was evicted
        ev.evaluate(cold)
        assert ev.sim_count == 4

    def test_clear_cache_forces_resim(self):
        ev = PlacementEvaluator(current_mirror())
        p = banded_placement(ev.block, "sequential")
        ev.evaluate(p)
        ev.clear_cache()
        ev.evaluate(p)
        assert ev.sim_count == 2


class TestCost:
    def test_cost_tracks_primary(self):
        ev = PlacementEvaluator(current_mirror(), cost_area_weight=0.0)
        p = banded_placement(ev.block, "sequential")
        assert ev.cost(p) == pytest.approx(ev.evaluate(p).primary_value)

    def test_area_term_penalises_sprawl(self):
        ev = PlacementEvaluator(current_mirror(), cost_area_weight=0.5)
        p = banded_placement(ev.block, "sequential")
        metrics = ev.evaluate(p)
        assert ev.cost(p) >= metrics.primary_value

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="cost_area_weight"):
            PlacementEvaluator(current_mirror(), cost_area_weight=-1.0)


class TestVariationCoupling:
    def test_zero_variation_zero_mismatch(self):
        """With the variation model off, every placement matches perfectly
        — placement only matters because of LDEs."""
        block = current_mirror()
        novar = default_variation_model(
            canvas_extent=1e-4, kind="none", with_lde=False
        )
        ev = PlacementEvaluator(block, variation=novar)
        for style in ("sequential", "ysym", "common_centroid"):
            m = ev.evaluate(banded_placement(block, style))
            assert m.primary_value < 0.02, style  # residual: probe vds difference

    def test_placement_changes_mismatch_under_variation(self):
        ev = PlacementEvaluator(current_mirror())
        a = ev.evaluate(banded_placement(ev.block, "sequential"))
        b = ev.evaluate(banded_placement(ev.block, "common_centroid"))
        assert a.primary_value != pytest.approx(b.primary_value, rel=1e-6)

    def test_systematic_spread_diagnostic(self):
        ev = PlacementEvaluator(current_mirror())
        p = banded_placement(ev.block, "sequential")
        spread = ev.systematic_spread(p)
        assert len(spread) == len(ev.block.pairs)
        assert all(v >= 0 for v in spread.values())

    def test_5t_ota_also_evaluates(self):
        ev = PlacementEvaluator(five_transistor_ota())
        m = ev.evaluate(banded_placement(ev.block, "sequential"))
        assert m["gain_db"] > 20
