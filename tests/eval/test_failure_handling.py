"""Failure injection: the evaluator and placers survive non-convergence."""

import pytest

from repro.core import MultiLevelPlacer
from repro.eval import FAILURE_PRIMARY, PlacementEvaluator
from repro.eval.suites import SUITES
from repro.layout import PlacementEnv, banded_placement
from repro.netlist import current_mirror
from repro.sim.dc import ConvergenceError


@pytest.fixture
def failing_evaluator(monkeypatch):
    """An evaluator whose first suite call blows up, then recovers."""
    block = current_mirror()
    evaluator = PlacementEvaluator(block)
    real_suite = SUITES["cm"]
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise ConvergenceError("injected failure")
        return real_suite(*args, **kwargs)

    monkeypatch.setattr(evaluator, "_suite", flaky)
    return evaluator


class TestFailureHandling:
    def test_failure_returns_penalty_metrics(self, failing_evaluator):
        placement = banded_placement(failing_evaluator.block, "ysym")
        metrics = failing_evaluator.evaluate(placement)
        assert metrics.primary_value == FAILURE_PRIMARY
        assert metrics["sim_failed"] == 1.0
        assert failing_evaluator.sim_failures == 1

    def test_failure_counts_a_simulation(self, failing_evaluator):
        placement = banded_placement(failing_evaluator.block, "ysym")
        failing_evaluator.evaluate(placement)
        assert failing_evaluator.sim_count == 1

    def test_failure_is_cached(self, failing_evaluator):
        placement = banded_placement(failing_evaluator.block, "ysym")
        failing_evaluator.evaluate(placement)
        again = failing_evaluator.evaluate(placement)
        assert again.primary_value == FAILURE_PRIMARY
        assert failing_evaluator.cache_hits == 1

    def test_next_placement_recovers(self, failing_evaluator):
        block = failing_evaluator.block
        failing_evaluator.evaluate(banded_placement(block, "ysym"))
        good = failing_evaluator.evaluate(
            banded_placement(block, "common_centroid"))
        assert good.primary_value < FAILURE_PRIMARY
        assert "power_w" in good

    def test_placer_survives_flaky_simulator(self, failing_evaluator):
        env = PlacementEnv(failing_evaluator.block, failing_evaluator.cost)
        placer = MultiLevelPlacer(
            env, seed=0, sim_counter=lambda: failing_evaluator.sim_count)
        result = placer.optimize(max_steps=40)
        # The injected failure hit the initial cost; the run still
        # finishes and finds real placements afterwards.
        assert result.best_cost < FAILURE_PRIMARY
