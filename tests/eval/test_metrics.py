"""Tests for the Metrics container and FOM computation."""

import pytest

from repro.eval import Metrics, RATIO_CLAMP, compute_fom
from repro.eval.fom import MetricSpec


def cm_metrics(mismatch=1.0, area=32.0):
    return Metrics(kind="cm", primary="mismatch_pct",
                   values={"mismatch_pct": mismatch, "area_um2": area})


class TestMetrics:
    def test_lookup(self):
        m = cm_metrics(2.5)
        assert m["mismatch_pct"] == 2.5
        assert "area_um2" in m
        assert m.primary_value == 2.5

    def test_missing_key(self):
        with pytest.raises(KeyError, match="metric"):
            cm_metrics()["power_w"]

    def test_primary_must_exist(self):
        with pytest.raises(ValueError, match="primary"):
            Metrics(kind="cm", primary="offset_mv", values={"mismatch_pct": 1.0})

    def test_summary_contains_values(self):
        s = cm_metrics(1.25).summary()
        assert "mismatch_pct=1.25" in s
        assert "[cm]" in s


class TestFom:
    def test_reference_scores_one(self):
        ref = cm_metrics(2.0, 30.0)
        assert compute_fom(ref, ref) == pytest.approx(1.0)

    def test_better_mismatch_raises_fom(self):
        ref = cm_metrics(2.0, 30.0)
        better = cm_metrics(1.0, 30.0)
        assert compute_fom(better, ref) > 1.0

    def test_worse_area_lowers_fom(self):
        ref = cm_metrics(2.0, 30.0)
        bigger = cm_metrics(2.0, 60.0)
        assert compute_fom(bigger, ref) < 1.0

    def test_mismatch_weighted_heavier_than_area(self):
        ref = cm_metrics(2.0, 30.0)
        better_mm = compute_fom(cm_metrics(1.0, 30.0), ref)
        better_area = compute_fom(cm_metrics(2.0, 15.0), ref)
        assert better_mm > better_area

    def test_ratio_clamped(self):
        ref = cm_metrics(2.0, 30.0)
        perfect = cm_metrics(1e-12, 30.0)
        fom = compute_fom(perfect, ref)
        # Even a near-zero mismatch cannot push its component past the clamp.
        assert fom <= RATIO_CLAMP

    def test_kind_mismatch_rejected(self):
        ota = Metrics(kind="ota", primary="offset_mv", values={
            "offset_mv": 1.0, "gain_db": 90.0, "gbw_hz": 1e8, "pm_deg": 80.0,
            "power_w": 1e-4, "area_um2": 80.0,
        })
        with pytest.raises(ValueError, match="compare"):
            compute_fom(ota, cm_metrics())

    def test_higher_is_better_orientation(self):
        ref = Metrics(kind="ota", primary="offset_mv", values={
            "offset_mv": 1.0, "gain_db": 90.0, "gbw_hz": 1e8, "pm_deg": 80.0,
            "power_w": 1e-4, "area_um2": 80.0,
        })
        more_gain = Metrics(kind="ota", primary="offset_mv", values={
            "offset_mv": 1.0, "gain_db": 99.0, "gbw_hz": 1e8, "pm_deg": 80.0,
            "power_w": 1e-4, "area_um2": 80.0,
        })
        assert compute_fom(more_gain, ref) > 1.0

    def test_bad_spec_weight(self):
        with pytest.raises(ValueError, match="weight"):
            MetricSpec("x", higher_is_better=True, weight=0.0)
