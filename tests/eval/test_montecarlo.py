"""Tests for the full-simulation Monte-Carlo runner."""

import numpy as np
import pytest

from repro.eval import monte_carlo
from repro.layout import banded_placement
from repro.netlist import current_mirror

N_RUNS = 40


@pytest.fixture(scope="module")
def block():
    return current_mirror()


@pytest.fixture(scope="module")
def cc_result(block):
    placement = banded_placement(block, "common_centroid")
    return monte_carlo(block, placement, n_runs=N_RUNS, seed=1)


class TestMonteCarlo:
    def test_sample_count(self, cc_result):
        assert len(cc_result.samples) + cc_result.failures == N_RUNS

    def test_statistics_accessors(self, cc_result):
        assert cc_result.std > 0
        assert cc_result.worst >= abs(cc_result.mean)
        assert cc_result.quantile(0.9) >= cc_result.quantile(0.1)

    def test_deterministic_given_seed(self, block):
        placement = banded_placement(block, "common_centroid")
        a = monte_carlo(block, placement, n_runs=10, seed=7)
        b = monte_carlo(block, placement, n_runs=10, seed=7)
        assert np.allclose(a.samples, b.samples)

    def test_seed_changes_samples(self, block):
        placement = banded_placement(block, "common_centroid")
        a = monte_carlo(block, placement, n_runs=10, seed=1)
        b = monte_carlo(block, placement, n_runs=10, seed=2)
        assert not np.allclose(a.samples, b.samples)

    def test_explicit_metric_key(self, block):
        placement = banded_placement(block, "common_centroid")
        result = monte_carlo(block, placement, n_runs=5, seed=0,
                             metric="power_w")
        assert result.metric == "power_w"
        assert np.all(result.samples > 0)

    def test_n_runs_validated(self, block):
        placement = banded_placement(block, "common_centroid")
        with pytest.raises(ValueError, match="n_runs"):
            monte_carlo(block, placement, n_runs=0)

    def test_random_floor_independent_of_placement(self):
        """Placement shifts the MC systematics, not the random floor —
        the paper's division of labour.  Uses the comparator's *signed*
        offset; the CM's unsigned worst-output metric would wash the
        systematic mean into the random spread."""
        from repro.netlist import comparator
        comp = comparator()
        cc = monte_carlo(comp, banded_placement(comp, "common_centroid"),
                         n_runs=30, seed=3)
        seq = monte_carlo(comp, banded_placement(comp, "sequential"),
                          n_runs=30, seed=3)
        assert cc.metric == "offset_signed_mv"
        assert cc.failures == 0 and seq.failures == 0  # pairing needs alignment
        assert seq.std == pytest.approx(cc.std, rel=0.5)
        # Draw i uses the same mismatch realization under both placements
        # (each draw's RNG stream depends only on (seed, index)), so the
        # paired difference isolates the systematic offset the layout
        # controls: near-constant across draws, and decisively non-zero.
        diff = seq.samples - cc.samples
        assert np.std(diff) < 0.1 * cc.std
        assert abs(np.mean(diff)) > 5 * np.std(diff) / np.sqrt(len(diff))
