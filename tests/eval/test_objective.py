"""Preference-conditioned objectives: validation, monotonicity, and the
bit-identity contract — default weights reproduce the historical scalar
cost exactly, on every library block."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.evaluator import PlacementEvaluator
from repro.eval.objective import OBJECTIVE_KEYS, ObjectiveWeights
from repro.layout.generators import banded_placement
from repro.service import default_registry

BLOCKS = ("cm", "comp", "ota", "ota5t", "ota2s")


class TestValidation:
    def test_defaults(self):
        w = ObjectiveWeights()
        assert (w.matching, w.area, w.noise, w.parasitics) == (1, 1, 0, 0)
        assert w.is_default

    def test_from_mapping_roundtrip_and_empty(self):
        assert ObjectiveWeights.from_mapping({}) == ObjectiveWeights()
        assert ObjectiveWeights.from_mapping(None) == ObjectiveWeights()
        w = ObjectiveWeights.from_mapping(
            {"matching": 2.0, "noise": 0.5})
        assert (w.matching, w.noise) == (2.0, 0.5)
        assert not w.is_default

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="speed"):
            ObjectiveWeights.from_mapping({"speed": 1.0})

    @pytest.mark.parametrize("key", OBJECTIVE_KEYS)
    def test_negative_and_non_finite_rejected(self, key):
        with pytest.raises(ValueError):
            ObjectiveWeights.from_mapping({key: -0.1})
        with pytest.raises(ValueError):
            ObjectiveWeights.from_mapping({key: float("nan")})
        with pytest.raises(ValueError):
            ObjectiveWeights.from_mapping({key: float("inf")})

    def test_zero_matching_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            ObjectiveWeights(matching=0.0)


def _cost(block, placement, metrics, **weights):
    evaluator = PlacementEvaluator(
        block, objective=ObjectiveWeights.from_mapping(weights or None))
    return evaluator._cost_of(placement, metrics)


@pytest.fixture(scope="module")
def priced_cm():
    """One real evaluation of the mirror block: placement + metrics."""
    block = default_registry().build("cm")
    placement = banded_placement(block, "ysym")
    metrics = PlacementEvaluator(block).evaluate(placement)
    assert "power_w" in metrics.values
    assert "wirelength_um" in metrics.values
    return block, placement, metrics


class TestBitIdentity:
    @pytest.mark.parametrize("circuit", BLOCKS)
    def test_default_weights_reproduce_historical_cost(self, circuit):
        block = default_registry().build(circuit)
        placement = banded_placement(block, "ysym")
        baseline = PlacementEvaluator(block)
        metrics = baseline.evaluate(placement)

        # The pre-objective scalar: primary * (1 + w_area*(spread - 1)).
        spread = placement.area_cells() / max(1, len(placement))
        historical = metrics.primary_value * (
            1.0 + baseline.cost_area_weight * max(0.0, spread - 1.0))

        assert baseline._cost_of(placement, metrics) == historical
        explicit = PlacementEvaluator(block, objective=ObjectiveWeights())
        assert explicit._cost_of(placement, metrics) == historical
        from_empty = PlacementEvaluator(
            block, objective=ObjectiveWeights.from_mapping({}))
        assert from_empty._cost_of(placement, metrics) == historical


class TestMonotonicity:
    @given(
        key=st.sampled_from(OBJECTIVE_KEYS),
        low=st.floats(min_value=0.0, max_value=10.0),
        bump=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_cost_monotone_in_each_weight(self, priced_cm, key, low, bump):
        block, placement, metrics = priced_cm
        if key == "matching" and low == 0.0:
            low = 0.5  # matching must stay positive
        before = _cost(block, placement, metrics, **{key: low})
        after = _cost(block, placement, metrics, **{key: low + bump})
        assert after >= before

    def test_noise_and_parasitics_add_proxy_terms(self, priced_cm):
        block, placement, metrics = priced_cm
        base = _cost(block, placement, metrics)
        noisy = _cost(block, placement, metrics, noise=2.0)
        wired = _cost(block, placement, metrics, parasitics=3.0)
        assert noisy == base + 2.0 * metrics.values["power_w"]
        assert wired == base + 3.0 * metrics.values["wirelength_um"]
