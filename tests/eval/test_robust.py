"""Tests for worst-case multi-corner evaluation."""

import pytest

from repro.eval import PlacementEvaluator
from repro.eval.robust import WorstCaseEvaluator
from repro.layout import banded_placement
from repro.netlist import current_mirror


@pytest.fixture(scope="module")
def block():
    return current_mirror()


@pytest.fixture(scope="module")
def robust(block):
    return WorstCaseEvaluator(block, corner_names=("tt", "fs", "sf"))


class TestWorstCase:
    def test_cost_is_max_over_corners(self, block, robust):
        placement = banded_placement(block, "ysym")
        per_corner = [
            ev.cost(placement) for ev in robust.evaluators.values()
        ]
        assert robust.cost(placement) == pytest.approx(max(per_corner))

    def test_cost_upper_bounds_typical(self, block, robust):
        placement = banded_placement(block, "ysym")
        tt_only = PlacementEvaluator(block)
        assert robust.cost(placement) >= tt_only.cost(placement) - 1e-12

    def test_evaluate_per_corner(self, block, robust):
        placement = banded_placement(block, "ysym")
        metrics = robust.evaluate(placement)
        assert set(metrics) == {"tt", "fs", "sf"}

    def test_worst_primary_names_a_corner(self, block, robust):
        placement = banded_placement(block, "ysym")
        worst_corner, value = robust.worst_primary(placement)
        assert worst_corner in ("tt", "fs", "sf")
        assert value > 0

    def test_sim_count_sums_members(self, block):
        robust = WorstCaseEvaluator(block, corner_names=("tt", "ss"))
        placement = banded_placement(block, "ysym")
        robust.cost(placement)
        assert robust.sim_count == 2  # one per corner

    def test_needs_corners(self, block):
        with pytest.raises(ValueError, match="corner"):
            WorstCaseEvaluator(block, corner_names=())

    def test_placer_compatible(self, block, robust):
        from repro.core import MultiLevelPlacer
        from repro.layout import PlacementEnv
        env = PlacementEnv(block, robust.cost)
        placer = MultiLevelPlacer(env, seed=1,
                                  sim_counter=lambda: robust.sim_count)
        result = placer.optimize(max_steps=40)
        assert result.best_cost <= result.initial_cost
