"""Tests for per-device sensitivity analysis."""

import pytest

from repro.eval import PlacementEvaluator, primary_sensitivities, rank_sensitivities
from repro.layout import banded_placement
from repro.netlist import comparator, current_mirror


class TestSensitivities:
    @pytest.fixture(scope="class")
    def cm_sens(self):
        block = current_mirror()
        evaluator = PlacementEvaluator(block)
        placement = banded_placement(block, "common_centroid")
        return primary_sensitivities(evaluator, placement)

    def test_every_device_reported(self, cm_sens):
        block = current_mirror()
        assert set(cm_sens) == {m.name for m in block.circuit.mosfets()}

    def test_mirror_devices_dominate(self, cm_sens):
        # In a current mirror every transistor is matching-critical; the
        # NMOS bank's sensitivities must be substantial (mismatch % per V).
        ranked = rank_sensitivities(cm_sens)
        top_names = {name for name, __ in ranked[:3]}
        assert top_names & {"mref", "mo1", "mo2", "pref", "po1"}

    def test_mirror_pair_sensitivities_oppose(self, cm_sens):
        # Raising the reference's Vth lowers its current sink capability;
        # raising an output's Vth acts the other way: opposite signs.
        # The headline metric is a max() over output deviations, so only
        # the dominant output branch has a resolved (non-noise)
        # sensitivity — compare against that one.
        dominant = max(("mo1", "mo2"), key=lambda n: abs(cm_sens[n]))
        assert cm_sens["mref"] * cm_sens[dominant] < 0

    def test_comparator_input_pair_antisymmetric(self):
        block = comparator()
        evaluator = PlacementEvaluator(block)
        placement = banded_placement(block, "common_centroid")
        sens = primary_sensitivities(evaluator, placement)
        # The two inputs steer the offset in opposite directions with
        # near-equal strength.
        assert sens["m1"] * sens["m2"] < 0
        assert abs(sens["m1"]) == pytest.approx(abs(sens["m2"]), rel=0.2)

    def test_delta_v_validated(self):
        block = current_mirror()
        evaluator = PlacementEvaluator(block)
        placement = banded_placement(block, "common_centroid")
        with pytest.raises(ValueError, match="delta_v"):
            primary_sensitivities(evaluator, placement, delta_v=0.0)

    def test_rank_order(self):
        ranked = rank_sensitivities({"a": -3.0, "b": 1.0, "c": 2.0})
        assert [name for name, __ in ranked] == ["a", "c", "b"]
