"""Tests for the ablation experiments (fast budgets, small circuit)."""

import pytest

from repro.experiments import (
    format_convergence,
    format_hierarchy,
    format_linearity,
    run_convergence_ablation,
    run_hierarchy_ablation,
    run_linearity_ablation,
)
from repro.netlist import five_transistor_ota


class TestHierarchyAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_hierarchy_ablation(five_transistor_ota(), max_steps=120, seed=1)

    def test_both_variants_report_tables(self, ablation):
        assert ablation.multi_table_entries > 0
        assert ablation.flat_table_entries > 0

    def test_format(self, ablation):
        text = format_hierarchy(ablation)
        assert "multi-level" in text
        assert "flat" in text


class TestConvergenceAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_convergence_ablation(five_transistor_ota(), max_steps=120, seed=1)

    def test_histories_nonempty(self, ablation):
        assert ablation.ql_history
        assert ablation.sa_history

    def test_cost_at_is_monotone(self, ablation):
        costs = [ablation.ql_cost_at(s) for s in (10, 30, 60, 120)]
        assert all(costs[i + 1] <= costs[i] for i in range(len(costs) - 1))

    def test_both_improve(self, ablation):
        assert ablation.ql_best <= ablation.ql_history[0][1]
        assert ablation.sa_best <= ablation.sa_history[0][1]

    def test_format(self, ablation):
        text = format_convergence(ablation, checkpoints=(10, 30))
        assert "QL best" in text
        assert "SA best" in text


class TestLinearityAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_linearity_ablation(five_transistor_ota, max_steps=150, seed=1)

    def test_both_regimes_present(self, ablation):
        assert set(ablation.regimes) == {"linear", "nonlinear"}

    def test_nonlinear_offers_more_headroom(self, ablation):
        """The paper's premise: optimization gains much more under the
        non-linear field than under the linear one (where symmetric
        placement is already near-optimal)."""
        assert ablation.gain("nonlinear") > ablation.gain("linear")

    def test_linear_symmetric_is_already_good(self, ablation):
        # Symmetric cancels a linear gradient almost perfectly: the
        # remaining offset under the linear field is small compared to
        # what the same layout suffers under the non-linear field.  (It is
        # not exactly zero — the 5T OTA has a small *topological*
        # systematic offset from the diode-vs-mirror V_DS imbalance.)
        linear = ablation.regimes["linear"]["symmetric"]
        nonlinear = ablation.regimes["nonlinear"]["symmetric"]
        assert linear < 0.25 * nonlinear

    def test_format(self, ablation):
        text = format_linearity(ablation)
        assert "linear" in text
        assert "nonlinear" in text
