"""Tests for experiment configuration handling."""

import pytest

from repro.experiments import ALL_CONFIGS, CM_CONFIG, ExperimentConfig
from repro.netlist import five_transistor_ota


class TestConfigs:
    def test_all_three_circuits_configured(self):
        assert set(ALL_CONFIGS) == {"cm", "comp", "ota"}

    def test_builders_produce_blocks(self):
        for config in ALL_CONFIGS.values():
            block = config.builder()
            assert block.name == config.name

    def test_scaled(self):
        longer = CM_CONFIG.scaled(2.0)
        assert longer.max_steps == 2 * CM_CONFIG.max_steps
        assert longer.seeds == CM_CONFIG.seeds

    def test_scaled_validates(self):
        with pytest.raises(ValueError, match="factor"):
            CM_CONFIG.scaled(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_steps"):
            ExperimentConfig("X", five_transistor_ota, 0, (1,))
        with pytest.raises(ValueError, match="seed"):
            ExperimentConfig("X", five_transistor_ota, 10, ())
        with pytest.raises(ValueError, match="epsilon_decay_frac"):
            ExperimentConfig("X", five_transistor_ota, 10, (1,), epsilon_decay_frac=0.0)

    def test_with_batch(self):
        batched = CM_CONFIG.with_batch(8)
        assert batched.batch == 8
        assert batched.max_steps == CM_CONFIG.max_steps
        assert CM_CONFIG.batch == 1  # original untouched

    def test_batch_validated(self):
        with pytest.raises(ValueError, match="batch"):
            ExperimentConfig("X", five_transistor_ota, 10, (1,), batch=0)
