"""Tests for the Fig. 3 harness (fast config on the 5T OTA)."""

import pytest

from repro.experiments import ExperimentConfig, best_symmetric, format_fig3, run_fig3
from repro.eval import PlacementEvaluator
from repro.netlist import five_transistor_ota

FAST = ExperimentConfig(
    name="OTA5T", builder=five_transistor_ota, max_steps=60, seeds=(1, 2, 3),
)


@pytest.fixture(scope="module")
def result():
    return run_fig3(FAST)


class TestStructure:
    def test_three_rows(self, result):
        assert [r.algorithm for r in result.rows] == [
            "Symmetric (SOTA)", "SA", "Q-learning",
        ]

    def test_reference_fom_is_one(self, result):
        assert result.row("Symmetric (SOTA)").fom == pytest.approx(1.0)

    def test_target_positive(self, result):
        assert result.target > 0

    def test_per_seed_stats_populated(self, result):
        for name in ("SA", "Q-learning"):
            row = result.row(name)
            assert len(row.primary_runs) == len(FAST.seeds)
            assert len(row.tt_runs) == len(FAST.seeds)

    def test_unknown_row_rejected(self, result):
        with pytest.raises(KeyError, match="algorithm"):
            result.row("GeneticAlgorithm")

    def test_claims_structure(self, result):
        claims = result.claims_hold()
        assert set(claims) == {
            "ql_beats_symmetric_primary",
            "ql_beats_symmetric_fom",
            "sa_beats_symmetric_primary",
            "ql_not_worse_than_sa_primary",
            "ql_fewer_sims_to_target",
        }

    def test_optimizers_beat_symmetric_even_fast(self, result):
        # Even a 60-step budget reliably beats the symmetric layout on
        # the small OTA (claims on the paper circuits live in benchmarks).
        claims = result.claims_hold()
        assert claims["ql_beats_symmetric_primary"]
        assert claims["sa_beats_symmetric_primary"]


class TestFormatting:
    def test_format_contains_rows_and_target(self, result):
        text = format_fig3(result)
        assert "Q-learning" in text
        assert "SA" in text
        assert "Symmetric" in text
        assert "target" in text
        assert "claims:" in text


class TestBestSymmetric:
    def test_returns_the_cheaper_style(self):
        block = five_transistor_ota()
        evaluator = PlacementEvaluator(block)
        style, placement, metrics = best_symmetric(block, evaluator)
        assert style in ("ysym", "common_centroid")
        assert metrics.primary_value >= 0
        assert len(placement) == block.circuit.total_units()
