"""Tests for table formatting and the median-run selection helper."""

import pytest

from repro.core.optimizer import PlacerResult
from repro.experiments import format_table
from repro.experiments.fig3 import _median_run
from repro.layout import CanvasSpec, Placement


def make_result(best_cost, sims=10):
    placement = Placement(CanvasSpec(2, 2))
    placement.place(("m", 0), (0, 0))
    return PlacerResult(
        best_placement=placement,
        best_cost=best_cost,
        initial_cost=10.0,
        sims_used=sims,
        steps=sims,
        reached_target=False,
        sims_to_target=None,
    )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["xxx", "y"], ["z", "wwww"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # Every line pads to the same total width (columns aligned).
        assert len({len(line) for line in lines}) == 1

    def test_rule_row_dashes(self):
        text = format_table(["col"], [["v"]])
        assert "---" in text.splitlines()[1]

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestMedianRun:
    def test_odd_count_picks_middle(self):
        runs = [make_result(3.0), make_result(1.0), make_result(2.0)]
        assert _median_run(runs).best_cost == 2.0

    def test_even_count_picks_upper_middle(self):
        runs = [make_result(c) for c in (4.0, 1.0, 3.0, 2.0)]
        assert _median_run(runs).best_cost == 3.0

    def test_tie_broken_by_sims(self):
        runs = [make_result(1.0, sims=50), make_result(1.0, sims=5),
                make_result(1.0, sims=20)]
        assert _median_run(runs).sims_used == 20

    def test_single_run(self):
        only = make_result(7.0)
        assert _median_run([only]) is only


class TestImprovementProperty:
    def test_improvement_fraction(self):
        result = make_result(best_cost=2.5)
        assert result.improvement == pytest.approx(0.75)

    def test_zero_initial_guarded(self):
        result = make_result(best_cost=0.0)
        result.initial_cost = 0.0
        assert result.improvement == 0.0
