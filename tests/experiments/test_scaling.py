"""Tests for the scaling sweep (small budgets)."""

import pytest

from repro.experiments.scaling import format_scaling, run_scaling


@pytest.fixture(scope="module")
def result():
    return run_scaling(units_per_device=(2, 4), max_steps=150, seed=1)


class TestScaling:
    def test_sizes_recorded(self, result):
        assert result.sizes == [10, 20]  # 5 devices x units_per_device

    def test_rows_complete(self, result):
        for size in result.sizes:
            row = result.rows[size]
            assert {"sims_to_target", "top_states", "total_entries",
                    "best", "target"} <= set(row)

    def test_targets_reached(self, result):
        for size in result.sizes:
            assert result.rows[size]["sims_to_target"] != float("inf"), size

    def test_best_beats_target(self, result):
        for size in result.sizes:
            row = result.rows[size]
            assert row["best"] <= row["target"], size

    def test_format(self, result):
        text = format_scaling(result)
        assert "#units" in text
        assert "10" in text and "20" in text
