"""Tests for the cold/warm/island transfer experiment."""

import pytest

from repro.experiments import (
    TRANSFER_CIRCUITS,
    format_transfer,
    run_transfer,
)


class TestTransferOta2s:
    """The PR's acceptance claim, on a fixed seed set: the island-merged
    campaign reaches the symmetric target in fewer total simulations
    than 4 independent cold runs spend."""

    @pytest.fixture(scope="class")
    def rows(self):
        return run_transfer(circuits=("ota2s",), workers=4, rounds=3,
                            steps_per_round=50, seed=0)

    def test_island_reaches_target(self, rows):
        island = rows[0].island
        assert island.sims_to_target is not None
        assert island.best_cost <= rows[0].target

    def test_island_beats_cold_fanout(self, rows):
        row = rows[0]
        assert row.island_beats_cold
        assert row.island.sims_to_target < row.cold.total_sims

    def test_regimes_share_target(self, rows):
        row = rows[0]
        assert row.target > 0
        assert row.cold.runs == 4
        assert row.warm.runs >= 1
        assert row.island.runs >= 1

    def test_format_transfer(self, rows):
        text = format_transfer(rows)
        assert "ota2s" in text
        for regime in ("cold", "warm", "island"):
            assert regime in text
        assert "ota2s=Y" in text


class TestTransferStructure:
    def test_default_sweep_covers_all_five_blocks(self):
        assert TRANSFER_CIRCUITS == ("cm", "comp", "ota", "ota5t", "ota2s")

    def test_single_cheap_circuit(self):
        rows = run_transfer(circuits=("ota5t",), workers=2, rounds=2,
                            steps_per_round=20, seed=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.circuit == "ota5t"
        for regime in (row.cold, row.warm, row.island):
            assert regime.total_sims > 0
            assert regime.best_cost <= row.target * 50  # sane scale

    def test_cold_sims_to_target_charges_prior_runs(self):
        # Cold accounting cumulates full budgets of earlier seeds before
        # the first reaching run's own sims-to-target.
        rows = run_transfer(circuits=("ota5t",), workers=2, rounds=1,
                            steps_per_round=15, seed=1)
        cold = rows[0].cold
        if cold.sims_to_target is not None:
            assert cold.sims_to_target <= cold.total_sims


class TestTargetScale:
    def test_scaled_race_tightens_every_regime_target(self):
        easy = run_transfer(circuits=("ota5t",), workers=2, rounds=1,
                            steps_per_round=10, seed=1)
        hard = run_transfer(circuits=("ota5t",), workers=2, rounds=1,
                            steps_per_round=10, seed=1, target_scale=0.5)
        assert hard[0].target == easy[0].target * 0.5
