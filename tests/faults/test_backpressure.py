"""Backpressure and graceful degradation: bounded queues, per-client
limits, request dedup, and the HTTP 429/503 contract."""

import json
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass

import pytest

from repro.service import PlacementRequest
from repro.service.http import make_server, server_thread
from repro.service.jobs import JobManager, QueueFullError
from repro.service.service import PlacementService


@dataclass(frozen=True)
class FakeRequest:
    seed: int

    def to_json_dict(self):
        return {"seed": self.seed}


@dataclass
class FakeResult:
    value: int

    def to_json_dict(self):
        return {"value": self.value}


class _Gate:
    """A runner that blocks every job until released (deterministic
    queue construction: no timing races)."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, request):
        self.entered.set()
        assert self.release.wait(30)
        return FakeResult(request.seed)

    def start_one(self, manager, request, **kwargs):
        """Submit and wait until the job is actually RUNNING."""
        job = manager.submit(request, **kwargs)
        assert self.entered.wait(30)
        self.entered.clear()
        return job


class TestQueueDepth:
    def test_full_queue_rejects_with_retry_after(self):
        gate = _Gate()
        manager = JobManager(gate, workers=1, max_queue_depth=2)
        running = gate.start_one(manager, FakeRequest(1))
        manager.submit(FakeRequest(2))
        manager.submit(FakeRequest(3))
        with pytest.raises(QueueFullError) as excinfo:
            manager.submit(FakeRequest(4))
        assert excinfo.value.reason == "queue_depth"
        assert excinfo.value.retry_after_s >= 1
        assert manager.stats["rejected_queue_full"] == 1
        # Draining the queue reopens it.
        gate.release.set()
        manager.result(running, timeout=30)
        manager.result("job-3", timeout=30)
        manager.submit(FakeRequest(4))
        manager.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            JobManager(lambda r: r, max_queue_depth=0)
        with pytest.raises(ValueError, match="max_inflight_per_client"):
            JobManager(lambda r: r, max_inflight_per_client=0)


class TestPerClientLimit:
    def test_limit_is_per_client(self):
        gate = _Gate()
        manager = JobManager(gate, workers=1, max_inflight_per_client=1)
        gate.start_one(manager, FakeRequest(1), client="alice")
        with pytest.raises(QueueFullError) as excinfo:
            manager.submit(FakeRequest(2), client="alice")
        assert excinfo.value.reason == "client_inflight"
        # Other clients — and anonymous submitters — are unaffected.
        manager.submit(FakeRequest(3), client="bob")
        manager.submit(FakeRequest(4))
        assert manager.stats["rejected_client_limit"] == 1
        gate.release.set()
        manager.shutdown()


class TestDedup:
    def test_identical_inflight_requests_share_one_job(self):
        gate = _Gate()
        manager = JobManager(gate, workers=1, dedup=True)
        first = gate.start_one(manager, FakeRequest(1))
        again = manager.submit(FakeRequest(1))
        other = manager.submit(FakeRequest(2))
        assert again == first
        assert other != first
        assert manager.stats["dedup_hits"] == 1
        gate.release.set()
        manager.result(first, timeout=30)
        manager.result(other, timeout=30)
        # Once settled, an identical request is NEW work again.
        fresh = manager.submit(FakeRequest(1))
        assert fresh != first
        gate.release.set()
        manager.shutdown()

    def test_dedup_off_by_default(self):
        gate = _Gate()
        manager = JobManager(gate, workers=1)
        a = gate.start_one(manager, FakeRequest(1))
        b = manager.submit(FakeRequest(1))
        assert a != b
        gate.release.set()
        manager.shutdown()


@pytest.fixture()
def throttled_server(tmp_path):
    """A served PlacementService whose job manager is gated + bounded."""
    service = PlacementService(policies=tmp_path / "policies")
    gate = _Gate()
    service._jobs = JobManager(gate, workers=1, max_queue_depth=1,
                               max_inflight_per_client=2)
    server = make_server(service)
    server_thread(server)
    yield server.url, service, gate
    gate.release.set()
    server.shutdown()
    server.server_close()
    service.close()


def _post_place(url, seed, client=None):
    payload = PlacementRequest(circuit="cm", steps=5, seed=seed)
    headers = {"Content-Type": "application/json"}
    if client:
        headers["X-Client-Id"] = client
    request = urllib.request.Request(
        url + "/place", data=json.dumps(payload.to_json_dict()).encode(),
        headers=headers,
    )
    with urllib.request.urlopen(request) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


class TestHTTPContract:
    def test_429_with_retry_after_when_queue_full(self, throttled_server):
        url, service, gate = throttled_server
        status, __, payload = _post_place(url, 1)
        assert status == 202
        assert gate.entered.wait(30)
        status, __, __ = _post_place(url, 2)
        assert status == 202  # fills the queue (depth 1)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_place(url, 3)
        assert excinfo.value.code == 429
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        body = json.loads(excinfo.value.read())
        assert "queue" in body["error"]
        assert body["retry_after_s"] >= 1

    def test_429_per_client_limit_uses_x_client_id(self, throttled_server):
        url, service, gate = throttled_server
        assert _post_place(url, 1, client="alice")[0] == 202
        assert gate.entered.wait(30)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            # alice has 1 running + this would be a 2nd in-flight; the
            # per-client cap is 2, so push a queued one first.
            _post_place(url, 2, client="alice")
            _post_place(url, 3, client="alice")
        assert excinfo.value.code == 429

    def test_503_while_draining(self, throttled_server):
        url, service, gate = throttled_server
        service.begin_drain()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_place(url, 1)
        assert excinfo.value.code == 503
        assert "Retry-After" in excinfo.value.headers
        # Health reports the drain; reads keep working.
        with urllib.request.urlopen(url + "/healthz") as resp:
            health = json.loads(resp.read())
        assert health["status"] == "draining"

    def test_healthz_reports_serving_stats(self, throttled_server):
        url, service, gate = throttled_server
        with urllib.request.urlopen(url + "/healthz") as resp:
            health = json.loads(resp.read())
        assert health["serving"] == {
            "dedup_hits": 0, "rejected_queue_full": 0,
            "rejected_client_limit": 0, "recovered": 0, "requeued": 0,
            "result_cache_hits": 0, "result_cache_evicted": 0,
            "result_cache_expired": 0,
        }
