"""Remote worker death and cluster recovery.

The distributed sibling of ``test_pool_recovery.py``: the same scripted
:class:`FaultPlan` is run against a serial backend and against a real
``worker_main`` daemon over loopback TCP, and the *accounting* — who
was charged which attempt, how many deaths, what quarantined — must be
equal, with every surviving payload bit-identical to a fault-free run.
A ``kill`` fault in a cluster slot is a genuine ``os._exit``: the
daemon respawns the slot, the coordinator sees the EOF, charges the
executing spec, and re-leases only what the dead slot held.
"""

import json
import multiprocessing

import pytest

from repro.runtime import (
    ClusterBackend,
    Fault,
    FaultPlan,
    RetryPolicy,
    RunSpec,
    SerialBackend,
    map_runs,
    resilient_map_runs,
    worker_main,
)
from repro.runtime.wire import outcome_to_wire

FAST = dict(backoff_base_s=0.0, jitter_frac=0.0)


def _specs(seeds=(1, 2, 3)):
    return [
        RunSpec(key=("run", seed), builder="cm", placer="ql", seed=seed,
                max_steps=5, evaluate_best=False)
        for seed in seeds
    ]


def _canon(outcomes):
    return [json.dumps(outcome_to_wire(o), sort_keys=True)
            for o in outcomes]


@pytest.fixture()
def cluster():
    """A coordinator plus one single-slot worker daemon process.

    One slot serialises execution, so fault attribution is exact —
    the same reason ``test_pool_recovery`` uses ``jobs=1``.
    """
    backend = ClusterBackend()
    host, port = backend.address
    daemon = multiprocessing.Process(
        target=worker_main, args=(host, port),
        kwargs=dict(jobs=1, name="chaos"), daemon=False,
    )
    daemon.start()
    backend.wait_for_workers(1, timeout_s=30.0)
    yield backend
    backend.close()
    daemon.join(timeout=10.0)
    if daemon.is_alive():
        daemon.terminate()
        daemon.join(timeout=5.0)


class TestRemoteKillRecovery:
    def test_kill_accounting_matches_serial(self, cluster):
        plan = FaultPlan.build({(("run", 2), 1): "kill"})
        kwargs = dict(retry=RetryPolicy(max_attempts=3, **FAST),
                      faults=plan)
        serial = resilient_map_runs(
            _specs(), backend=SerialBackend(), **kwargs)
        remote = resilient_map_runs(_specs(), backend=cluster, **kwargs)
        assert remote.worker_deaths == 1
        assert remote.attempts == serial.attempts == {
            ("run", 1): 1, ("run", 2): 2, ("run", 3): 1}
        assert remote.quarantined == serial.quarantined == ()
        assert serial.accounting() == remote.accounting()
        baseline = _canon(map_runs(_specs(), SerialBackend()))
        assert _canon(remote.outcomes) == baseline
        assert _canon(serial.outcomes) == baseline

    def test_raise_fault_parity(self, cluster):
        plan = FaultPlan.build({(("run", 1), 1): "raise"})
        kwargs = dict(retry=RetryPolicy(max_attempts=3, **FAST),
                      faults=plan)
        serial = resilient_map_runs(
            _specs(), backend=SerialBackend(), **kwargs)
        remote = resilient_map_runs(_specs(), backend=cluster, **kwargs)
        assert serial.accounting() == remote.accounting()
        assert remote.worker_deaths == 0
        assert _canon(remote.outcomes) == _canon(serial.outcomes)

    def test_delay_fault_times_out_like_serial(self, cluster):
        plan = FaultPlan.build(
            {(("run", 3), 1): Fault(action="delay", delay_s=3.0)})
        kwargs = dict(
            retry=RetryPolicy(max_attempts=2, timeout_s=1.0, **FAST),
            faults=plan,
        )
        serial = resilient_map_runs(
            _specs(), backend=SerialBackend(), **kwargs)
        remote = resilient_map_runs(_specs(), backend=cluster, **kwargs)
        assert serial.timeouts == remote.timeouts == 1
        assert serial.accounting() == remote.accounting()
        assert _canon(remote.outcomes) == _canon(serial.outcomes)

    def test_repeated_kills_quarantine(self, cluster):
        plan = FaultPlan.build({
            (("run", 1), 1): "kill",
            (("run", 1), 2): "kill",
        })
        report = resilient_map_runs(
            _specs((1,)), backend=cluster,
            retry=RetryPolicy(max_attempts=2, **FAST), faults=plan,
        )
        assert report.worker_deaths == 2
        assert report.quarantined == (("run", 1),)
        failed = report.failed()[0]
        assert failed.error_type == "WorkerKilled"
        assert failed.attempts == 2
        # The daemon respawned its slot; the backend still serves.
        cluster.wait_for_workers(1, timeout_s=10.0)
        clean = resilient_map_runs(
            _specs((5,)), backend=cluster,
            retry=RetryPolicy(max_attempts=2, **FAST),
        )
        assert clean.attempts == {("run", 5): 1}
