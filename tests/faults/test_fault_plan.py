"""Unit tests for the deterministic fault-injection primitives."""

import pytest

from repro.runtime import (
    Fault,
    FaultPlan,
    InjectedFault,
    JournalFault,
    RetryPolicy,
    WorkerKilled,
)
from repro.runtime.faults import DELAY, KILL, RAISE


class TestFault:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            Fault(action="segfault")

    def test_delay_fault_needs_positive_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Fault(action=DELAY, delay_s=0.0)

    def test_actions_construct(self):
        assert Fault(action=KILL).action == KILL
        assert Fault(action=RAISE).action == RAISE
        assert Fault(action=DELAY, delay_s=0.1).delay_s == 0.1


class TestFaultPlan:
    def test_build_from_mapping_with_string_shorthand(self):
        plan = FaultPlan.build({
            ("a", 1): "raise",
            ("b", 2): Fault(action=DELAY, delay_s=0.05),
        })
        assert plan.fault_for("a", 1).action == RAISE
        assert plan.fault_for("b", 2).action == DELAY
        assert plan.fault_for("a", 2) is None
        assert plan.fault_for("c", 1) is None

    def test_duplicate_key_attempt_rejected(self):
        fault = Fault(action=RAISE)
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(faults=((("a", 1, fault)), (("a", 1, fault))))

    def test_bad_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            FaultPlan.build({("a", 0): "raise"})

    def test_apply_raise(self):
        plan = FaultPlan.build({("a", 1): "raise"})
        with pytest.raises(InjectedFault, match="attempt 1"):
            plan.apply("a", 1, in_worker_process=False)
        # Other attempts/keys pass through untouched.
        plan.apply("a", 2, in_worker_process=False)
        plan.apply("b", 1, in_worker_process=False)

    def test_apply_kill_in_driver_degrades_to_exception(self):
        # In the driver process a kill fault must NOT os._exit — it
        # raises WorkerKilled so serial backends charge the attempt the
        # same way a dead pool worker would.
        plan = FaultPlan.build({("a", 1): "kill"})
        with pytest.raises(WorkerKilled):
            plan.apply("a", 1, in_worker_process=False)

    def test_apply_delay_sleeps_and_returns(self):
        import time

        plan = FaultPlan.build({
            ("a", 1): Fault(action=DELAY, delay_s=0.02),
        })
        start = time.monotonic()
        plan.apply("a", 1, in_worker_process=False)
        assert time.monotonic() - start >= 0.02


class TestJournalFault:
    def test_crash_on_append_validated(self):
        with pytest.raises(ValueError, match="crash_on_append"):
            JournalFault(crash_on_append=0)
        assert JournalFault(crash_on_append=3).crash_on_append == 3


class TestBackoffDeterminism:
    def test_no_backoff_before_first_retry(self):
        assert RetryPolicy().backoff_s(0, seed=7) == 0.0

    def test_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.3, jitter_frac=0.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_in_seed_and_retry(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter_frac=0.5)
        a = [policy.backoff_s(n, seed=11) for n in range(1, 5)]
        b = [policy.backoff_s(n, seed=11) for n in range(1, 5)]
        assert a == b
        # A different seed jitters differently (same bounds).
        c = [policy.backoff_s(n, seed=12) for n in range(1, 5)]
        assert a != c

    def test_jitter_bounded_by_frac(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=1.0,
                             jitter_frac=0.25)
        for seed in range(20):
            delay = policy.backoff_s(1, seed=seed)
            assert 0.1 <= delay <= 0.1 * 1.25

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
