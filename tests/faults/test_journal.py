"""The append-only job journal: durability, torn-write tolerance, replay."""

import pytest

from repro.runtime import JournalCrash, JournalFault
from repro.service.journal import (
    JobJournal,
    max_job_number,
    replay_journal,
)


class TestAppendAndRead:
    def test_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append("submitted", "job-1", kind="place",
                       request={"circuit": "cm", "seed": 1})
        journal.append("running", "job-1")
        journal.append("done", "job-1", result={"best_cost": 2.5})
        journal.close()
        entries = JobJournal(tmp_path).entries()
        assert [e["event"] for e in entries] == [
            "submitted", "running", "done"]
        assert entries[0]["request"] == {"circuit": "cm", "seed": 1}
        assert entries[2]["result"] == {"best_cost": 2.5}
        assert all(e["job"] == "job-1" for e in entries)

    def test_unknown_event_rejected_at_write(self, tmp_path):
        with pytest.raises(ValueError, match="event"):
            JobJournal(tmp_path).append("exploded", "job-1")

    def test_missing_file_is_empty(self, tmp_path):
        assert JobJournal(tmp_path).entries() == []

    def test_durable_per_append(self, tmp_path):
        # Entries are readable immediately, without close() — the
        # handle is flushed+fsynced per append.
        journal = JobJournal(tmp_path)
        journal.append("submitted", "job-1", kind="place", request={})
        assert len(JobJournal(tmp_path).entries()) == 1
        journal.close()


class TestTornWrites:
    def test_injected_crash_leaves_a_torn_final_line(self, tmp_path):
        journal = JobJournal(tmp_path, fault=JournalFault(crash_on_append=3))
        journal.append("submitted", "job-1", kind="place", request={})
        journal.append("running", "job-1")
        with pytest.raises(JournalCrash):
            journal.append("done", "job-1", result={"best_cost": 1.0})
        # The torn prefix is really on disk...
        text = (tmp_path / "jobs.jsonl").read_text()
        assert len(text.splitlines()) == 3
        # ...and replay drops exactly the torn line.
        entries = JobJournal(tmp_path).entries()
        assert [e["event"] for e in entries] == ["submitted", "running"]

    def test_crashed_journal_refuses_further_appends(self, tmp_path):
        # A crashed journal models a dead process: a later append would
        # land behind the torn line and corrupt the crash signature.
        journal = JobJournal(tmp_path, fault=JournalFault(crash_on_append=1))
        with pytest.raises(JournalCrash):
            journal.append("submitted", "job-1", kind="place", request={})
        with pytest.raises(JournalCrash, match="already crashed"):
            journal.append("failed", "job-1", error="x")
        assert JobJournal(tmp_path).entries() == []

    def test_interior_corruption_raises_not_skips(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append("submitted", "job-1", kind="place", request={})
        journal.append("done", "job-1", result={})
        journal.close()
        path = tmp_path / "jobs.jsonl"
        lines = path.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # corrupt a NON-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            JobJournal(tmp_path).entries()


class TestReplay:
    def test_folds_to_final_states(self):
        entries = [
            {"event": "submitted", "job": "job-1", "kind": "place",
             "request": {"seed": 1}, "client": "a", "request_hash": "h1"},
            {"event": "submitted", "job": "job-2", "kind": "train",
             "request": {"seed": 2}},
            {"event": "submitted", "job": "job-3", "kind": "place",
             "request": {"seed": 3}},
            {"event": "submitted", "job": "job-4", "kind": "place",
             "request": {"seed": 4}},
            {"event": "running", "job": "job-1"},
            {"event": "running", "job": "job-2"},
            {"event": "done", "job": "job-1", "result": {"best_cost": 9.0}},
            {"event": "failed", "job": "job-2", "error": "boom"},
            {"event": "cancelled", "job": "job-4"},
        ]
        jobs = {job.id: job for job in replay_journal(entries)}
        assert jobs["job-1"].state == "done"
        assert jobs["job-1"].result == {"best_cost": 9.0}
        assert jobs["job-1"].client == "a"
        assert jobs["job-1"].request_hash == "h1"
        assert not jobs["job-1"].interrupted
        assert jobs["job-2"].state == "failed"
        assert jobs["job-2"].error == "boom"
        assert jobs["job-2"].kind == "train"
        assert jobs["job-3"].state == "submitted"
        assert jobs["job-3"].interrupted
        assert jobs["job-4"].state == "cancelled"

    def test_running_without_done_is_interrupted(self):
        entries = [
            {"event": "submitted", "job": "job-1", "kind": "place",
             "request": {}},
            {"event": "running", "job": "job-1"},
        ]
        (job,) = replay_journal(entries)
        assert job.state == "running" and job.interrupted

    def test_id_order_and_counter_resume(self):
        entries = [
            {"event": "submitted", "job": f"job-{n}", "kind": "place",
             "request": {}}
            for n in (10, 2, 7)
        ]
        jobs = replay_journal(entries)
        assert [job.id for job in jobs] == ["job-2", "job-7", "job-10"]
        assert max_job_number(jobs) == 10
        assert max_job_number([]) == 0

    def test_unknown_events_ignored(self):
        entries = [
            {"event": "submitted", "job": "job-1", "kind": "place",
             "request": {}},
            {"event": "compacted", "job": "job-1"},  # future format
            {"event": "done", "job": "job-1", "result": {}},
        ]
        (job,) = replay_journal(entries)
        assert job.state == "done"
