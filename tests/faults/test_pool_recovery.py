"""Worker death and pool recovery — the acceptance rail: a killed
worker costs only the lost spec's re-execution, the pool is rebuilt, and
every surviving result is bit-identical to a fault-free run."""

import pytest

from repro.runtime import (
    FaultPlan,
    ProcessPoolBackend,
    RetryPolicy,
    RunSpec,
    SerialBackend,
    WorkerTaskError,
    map_runs,
    resilient_map_runs,
)

FAST = dict(backoff_base_s=0.0, jitter_frac=0.0)


def _specs(seeds=(1, 2, 3)):
    return [
        RunSpec(key=("run", seed), builder="cm", placer="ql", seed=seed,
                max_steps=5, evaluate_best=False)
        for seed in seeds
    ]


def _fingerprint(outcome):
    r = outcome.result
    return (outcome.key, r.best_cost, r.sims_used,
            tuple(map(tuple, r.history)))


def _boom(spec):
    raise ValueError(f"numerical blow-up at seed {spec.seed}")


class TestWorkerDeathRecovery:
    def test_kill_on_single_worker_pool_exact_accounting(self):
        # jobs=1 serialises the pool, so worker-death attribution is
        # exact: only the killed spec is charged a second attempt.
        plan = FaultPlan.build({(("run", 2), 1): "kill"})
        report = resilient_map_runs(
            _specs(),
            backend=ProcessPoolBackend(jobs=1),
            retry=RetryPolicy(max_attempts=3, **FAST),
            faults=plan,
        )
        assert report.attempts == {("run", 1): 1, ("run", 2): 2, ("run", 3): 1}
        assert report.worker_deaths == 1
        assert report.pool_rebuilds >= 1
        assert report.quarantined == ()
        baseline = map_runs(_specs(), SerialBackend())
        assert [_fingerprint(o) for o in report.outcomes] == [
            _fingerprint(o) for o in baseline]

    def test_serial_kill_accounts_like_single_worker_pool(self):
        plan = FaultPlan.build({(("run", 2), 1): "kill"})
        kwargs = dict(retry=RetryPolicy(max_attempts=3, **FAST), faults=plan)
        serial = resilient_map_runs(
            _specs(), backend=SerialBackend(), **kwargs)
        pooled = resilient_map_runs(
            _specs(), backend=ProcessPoolBackend(jobs=1), **kwargs)
        assert serial.attempts == pooled.attempts
        assert serial.worker_deaths == pooled.worker_deaths == 1
        assert [_fingerprint(o) for o in serial.outcomes] == [
            _fingerprint(o) for o in pooled.outcomes]

    def test_repeated_kills_quarantine_as_worker_killed(self):
        plan = FaultPlan.build({
            (("run", 1), 1): "kill",
            (("run", 1), 2): "kill",
        })
        report = resilient_map_runs(
            _specs((1,)),
            backend=ProcessPoolBackend(jobs=1),
            retry=RetryPolicy(max_attempts=2, **FAST),
            faults=plan,
        )
        failed = report.outcomes[0]
        assert failed.error_type == "WorkerKilled"
        assert failed.attempts == 2
        assert report.worker_deaths == 2

    def test_many_worker_pool_results_survive_a_kill(self):
        # With >1 workers, collateral attempt counts may vary (a death
        # can interrupt whichever neighbours were mid-flight) — but
        # results never do, and nothing is lost or quarantined.
        plan = FaultPlan.build({(("run", 2), 1): "kill"})
        report = resilient_map_runs(
            _specs(),
            backend=ProcessPoolBackend(jobs=2),
            retry=RetryPolicy(max_attempts=4, **FAST),
            faults=plan,
        )
        assert report.quarantined == ()
        assert report.worker_deaths >= 1
        baseline = map_runs(_specs(), SerialBackend())
        assert [_fingerprint(o) for o in report.outcomes] == [
            _fingerprint(o) for o in baseline]


class TestWorkerErrorAttribution:
    def test_pool_map_exception_names_the_originating_spec(self):
        backend = ProcessPoolBackend(jobs=2)
        with pytest.raises(WorkerTaskError) as excinfo:
            backend.map(_boom, _specs((7,)))
        message = str(excinfo.value)
        # The annotated error names circuit, placer and seed — no
        # anonymous remote tracebacks.
        assert "circuit='cm'" in message
        assert "seed=7" in message
        assert "numerical blow-up" in message

    def test_plain_items_fall_back_to_index_labels(self):
        backend = ProcessPoolBackend(jobs=2)

        with pytest.raises(WorkerTaskError, match=r"item 1"):
            backend.map(_div, [1, 0])


def _div(x):
    return 1 // x
