"""Crash-restart recovery of the job manager: kill a manager (or crash
its journal mid-write), build a fresh one on the same directory, and
lose nothing."""

import threading
from dataclasses import dataclass

import pytest

from repro.runtime import JournalCrash, JournalFault
from repro.service.journal import JobJournal
from repro.service.jobs import JobManager


@dataclass(frozen=True)
class FakeRequest:
    """A minimal journalable request (seed doubles as identity)."""

    seed: int
    kind_name: str = "place"

    def to_json_dict(self):
        return {"seed": self.seed}


@dataclass
class FakeResult:
    value: int

    def to_json_dict(self):
        return {"value": self.value}


def _runner(request):
    return FakeResult(request.seed * 10)


def _decode_request(kind, data):
    return FakeRequest(seed=data["seed"])


def _decode_result(data):
    return FakeResult(value=data["value"])


def _recovered_manager(tmp_path, **kwargs):
    manager = JobManager(_runner, workers=1,
                         journal=JobJournal(tmp_path), **kwargs)
    report = manager.recover(_decode_request, _decode_result)
    return manager, report


class TestCleanRestart:
    def test_done_jobs_serve_from_journal_without_rerun(self, tmp_path):
        first = JobManager(_runner, workers=1, journal=JobJournal(tmp_path))
        job = first.submit(FakeRequest(seed=4))
        assert first.result(job, timeout=30).value == 40
        first.shutdown()

        executed = []

        def exploding_runner(request):
            executed.append(request)
            raise AssertionError("a journal-served job must not re-run")

        second = JobManager(exploding_runner, workers=1,
                            journal=JobJournal(tmp_path))
        report = second.recover(_decode_request, _decode_result)
        assert report.served_from_journal == [job]
        assert report.requeued == []
        record = second.status(job)
        assert record.state == "done" and record.recovered
        assert second.result(job).value == 40
        assert executed == []
        second.shutdown()

    def test_job_counter_resumes_past_journaled_ids(self, tmp_path):
        first = JobManager(_runner, workers=1, journal=JobJournal(tmp_path))
        first.submit(FakeRequest(seed=1))
        job2 = first.submit(FakeRequest(seed=2))
        first.result(job2, timeout=30)
        first.shutdown()

        second, __ = _recovered_manager(tmp_path)
        assert second.submit(FakeRequest(seed=3)) == "job-3"
        second.shutdown()

    def test_recover_requires_pristine_manager(self, tmp_path):
        first = JobManager(_runner, workers=1, journal=JobJournal(tmp_path))
        job = first.submit(FakeRequest(seed=1))
        first.result(job, timeout=30)
        with pytest.raises(RuntimeError, match="before any live"):
            first.recover(_decode_request, _decode_result)
        first.shutdown()
        with pytest.raises(RuntimeError, match="needs a journal"):
            JobManager(_runner).recover(_decode_request, _decode_result)


class TestInterruptedJobs:
    def test_mid_flight_jobs_requeue_and_complete(self, tmp_path):
        # Simulate dying mid-job: journal submitted+running by hand, the
        # way a killed process would have left them.
        journal = JobJournal(tmp_path)
        journal.append("submitted", "job-1", kind="place",
                       request={"seed": 6})
        journal.append("running", "job-1")
        journal.append("submitted", "job-2", kind="place",
                       request={"seed": 7})
        journal.close()

        manager, report = _recovered_manager(tmp_path)
        assert report.requeued == ["job-1", "job-2"]
        assert manager.result("job-1", timeout=30).value == 60
        assert manager.result("job-2", timeout=30).value == 70
        manager.shutdown()
        # The re-runs journaled their own completions: a third manager
        # serves both from the journal.
        third, report3 = _recovered_manager(tmp_path)
        assert sorted(report3.served_from_journal) == ["job-1", "job-2"]
        assert third.result("job-1").value == 60
        third.shutdown()

    def test_journal_crash_mid_done_write_loses_nothing(self, tmp_path):
        # Crash the journal exactly on the "done" append (append #3:
        # submitted, running, done).  The in-memory job fails loudly;
        # on disk the torn line is dropped, the job replays as
        # interrupted, re-runs, and lands the same result.
        journal = JobJournal(tmp_path, fault=JournalFault(crash_on_append=3))
        first = JobManager(_runner, workers=1, journal=journal)
        job = first.submit(FakeRequest(seed=5))
        with pytest.raises(RuntimeError, match="injected journal crash"):
            first.result(job, timeout=30)
        first.shutdown()

        second, report = _recovered_manager(tmp_path)
        assert report.requeued == [job]
        assert second.result(job, timeout=30).value == 50
        second.shutdown()

    def test_journal_crash_on_submit_rejects_the_submission(self, tmp_path):
        journal = JobJournal(tmp_path, fault=JournalFault(crash_on_append=1))
        manager = JobManager(_runner, workers=1, journal=journal)
        with pytest.raises(JournalCrash):
            manager.submit(FakeRequest(seed=1))
        manager.shutdown()
        # Nothing durable, nothing to recover.
        second, report = _recovered_manager(tmp_path)
        assert report.served_from_journal == [] and report.requeued == []
        second.shutdown()


class TestFailedAndCancelledReplay:
    def test_failed_job_replays_with_stored_error(self, tmp_path):
        def failing_runner(request):
            raise ValueError(f"bad seed {request.seed}")

        first = JobManager(failing_runner, workers=1,
                           journal=JobJournal(tmp_path))
        job = first.submit(FakeRequest(seed=3))
        with pytest.raises(RuntimeError, match="bad seed 3"):
            first.result(job, timeout=30)
        first.shutdown()

        second, report = _recovered_manager(tmp_path)
        assert report.served_from_journal == [job]
        record = second.status(job)
        assert record.state == "failed" and record.recovered
        assert "bad seed 3" in record.error
        with pytest.raises(RuntimeError, match="bad seed 3"):
            second.result(job)
        second.shutdown()

    def test_cancelled_job_replays_cancelled(self, tmp_path):
        gate = threading.Event()

        def gated_runner(request):
            gate.wait(30)
            return _runner(request)

        first = JobManager(gated_runner, workers=1,
                           journal=JobJournal(tmp_path))
        running = first.submit(FakeRequest(seed=1))
        queued = first.submit(FakeRequest(seed=2))
        assert first.cancel(queued)
        gate.set()
        first.result(running, timeout=30)
        first.shutdown()

        second, __ = _recovered_manager(tmp_path)
        assert second.status(queued).state == "cancelled"
        with pytest.raises(RuntimeError, match="cancelled"):
            second.result(queued)
        second.shutdown()

    def test_undecodable_request_registers_as_failed(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append("submitted", "job-1", kind="place",
                       request={"not_a_seed": True})
        journal.close()

        manager = JobManager(_runner, workers=1, journal=JobJournal(tmp_path))
        report = manager.recover(_decode_request, _decode_result)
        assert report.undecodable == ["job-1"]
        record = manager.status("job-1")
        assert record.state == "failed"
        assert "no longer decodes" in record.error
        manager.shutdown()
