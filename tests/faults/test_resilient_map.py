"""resilient_map_runs: retry, quarantine, timeout — with exact,
reproducible accounting, identical across serial and pool backends."""

import pytest

from repro.runtime import (
    FailedRun,
    Fault,
    FaultPlan,
    ProcessPoolBackend,
    RetryPolicy,
    RunSpec,
    SerialBackend,
    map_runs,
    resilient_map_runs,
)

#: A fast retry policy: real attempt semantics, no wall-clock padding.
FAST = dict(backoff_base_s=0.0, jitter_frac=0.0)


def _specs(seeds=(1, 2, 3)):
    return [
        RunSpec(key=("run", seed), builder="cm", placer="ql", seed=seed,
                max_steps=5, evaluate_best=False)
        for seed in seeds
    ]


def _fingerprint(outcome):
    """The bit-identity probe: everything a run's result determines."""
    r = outcome.result
    return (outcome.key, r.best_cost, r.sims_used, tuple(map(tuple, r.history)),
            tuple(sorted(r.best_placement.cell_of(u) for u in
                         r.best_placement.units)))


class TestCleanBatch:
    def test_matches_map_runs_bit_for_bit(self):
        specs = _specs()
        report = resilient_map_runs(specs, retry=RetryPolicy(**FAST))
        baseline = map_runs(_specs(), SerialBackend())
        assert [_fingerprint(o) for o in report.outcomes] == [
            _fingerprint(o) for o in baseline]
        assert report.retries == 0
        assert report.attempts == {spec.key: 1 for spec in specs}
        assert report.quarantined == ()

    def test_duplicate_keys_rejected(self):
        specs = _specs((1, 1))
        with pytest.raises(ValueError, match="unique"):
            resilient_map_runs(specs)


class TestRetries:
    def test_injected_raise_is_retried_to_the_same_result(self):
        plan = FaultPlan.build({(("run", 2), 1): "raise"})
        report = resilient_map_runs(
            _specs(), retry=RetryPolicy(max_attempts=3, **FAST), faults=plan)
        baseline = map_runs(_specs(), SerialBackend())
        assert [_fingerprint(o) for o in report.outcomes] == [
            _fingerprint(o) for o in baseline]
        assert report.attempts == {("run", 1): 1, ("run", 2): 2, ("run", 3): 1}
        assert report.retries == 1

    def test_exhausted_spec_quarantines_not_raises(self):
        plan = FaultPlan.build({
            (("run", 2), 1): "raise",
            (("run", 2), 2): "raise",
        })
        report = resilient_map_runs(
            _specs(), retry=RetryPolicy(max_attempts=2, **FAST), faults=plan)
        failed = report.outcomes[1]
        assert isinstance(failed, FailedRun)
        assert failed.key == ("run", 2)
        assert failed.attempts == 2
        assert failed.error_type == "InjectedFault"
        # The quarantine summary names the run: circuit, placer, seed.
        assert "circuit='cm'" in failed.summary()
        assert "seed=2" in failed.summary()
        # Neighbours are untouched and bit-identical.
        baseline = map_runs(_specs((1, 3)), SerialBackend())
        assert _fingerprint(report.outcomes[0]) == _fingerprint(baseline[0])
        assert _fingerprint(report.outcomes[2]) == _fingerprint(baseline[1])
        assert report.quarantined == (("run", 2),)
        assert report.ok()[0].key == ("run", 1)
        assert [f.key for f in report.failed()] == [("run", 2)]

    def test_same_plan_same_accounting_twice(self):
        plan = FaultPlan.build({
            (("run", 1), 1): "raise",
            (("run", 3), 1): "raise",
            (("run", 3), 2): "raise",
        })
        kwargs = dict(retry=RetryPolicy(max_attempts=2, **FAST), faults=plan)
        first = resilient_map_runs(_specs(), **kwargs)
        second = resilient_map_runs(_specs(), **kwargs)
        assert first.accounting() == second.accounting()
        assert first.retries == 2 and first.worker_deaths == 0


class TestSerialPoolEquivalence:
    def test_in_band_faults_account_identically(self):
        plan = FaultPlan.build({
            (("run", 1), 1): "raise",
            (("run", 2), 1): "raise",
            (("run", 2), 2): "raise",
        })
        kwargs = dict(retry=RetryPolicy(max_attempts=2, **FAST), faults=plan)
        serial = resilient_map_runs(_specs(), backend=SerialBackend(), **kwargs)
        pooled = resilient_map_runs(
            _specs(), backend=ProcessPoolBackend(jobs=2), **kwargs)
        assert serial.accounting() == pooled.accounting()
        for a, b in zip(serial.outcomes, pooled.outcomes):
            if isinstance(a, FailedRun):
                assert isinstance(b, FailedRun)
                assert (a.key, a.attempts, a.error_type) == (
                    b.key, b.attempts, b.error_type)
            else:
                assert _fingerprint(a) == _fingerprint(b)


class TestTimeouts:
    def test_slow_attempt_times_out_then_retries_clean(self):
        plan = FaultPlan.build({
            (("run", 2), 1): Fault(action="delay", delay_s=0.4),
        })
        report = resilient_map_runs(
            _specs(),
            retry=RetryPolicy(max_attempts=2, timeout_s=0.25, **FAST),
            faults=plan,
        )
        assert report.timeouts == 1
        assert report.attempts[("run", 2)] == 2
        baseline = map_runs(_specs(), SerialBackend())
        assert [_fingerprint(o) for o in report.outcomes] == [
            _fingerprint(o) for o in baseline]

    def test_persistently_slow_spec_quarantines_as_timeout(self):
        plan = FaultPlan.build({
            (("run", 1), n): Fault(action="delay", delay_s=0.4)
            for n in (1, 2)
        })
        report = resilient_map_runs(
            _specs((1,)),
            retry=RetryPolicy(max_attempts=2, timeout_s=0.25, **FAST),
            faults=plan,
        )
        failed = report.outcomes[0]
        assert isinstance(failed, FailedRun)
        assert failed.error_type == "TimeoutError"
        assert report.timeouts == 2
