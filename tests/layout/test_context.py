"""Tests for the placement → UnitContext bridge."""

import pytest

from repro.layout import CanvasSpec, Placement, device_contexts, unit_context, unit_contexts
from repro.tech import generic_tech_40

TECH = generic_tech_40()
PITCH = TECH.grid_pitch


@pytest.fixture
def row_placement():
    p = Placement(CanvasSpec(6, 4))
    for k in range(3):
        p.place(("m", k), (k + 1, 2))  # cells (1,2) (2,2) (3,2)
    return p


class TestPositions:
    def test_cell_centre_positions(self, row_placement):
        ctx = unit_context(row_placement, ("m", 0), TECH)
        assert ctx.x == pytest.approx(1.5 * PITCH)
        assert ctx.y == pytest.approx(2.5 * PITCH)

    def test_contexts_for_all(self, row_placement):
        ctxs = unit_contexts(row_placement, TECH)
        assert len(ctxs) == 3


class TestDiffusionRuns:
    def test_middle_unit_has_runs_both_sides(self, row_placement):
        ctx = unit_context(row_placement, ("m", 1), TECH)
        assert ctx.run_left == 1
        assert ctx.run_right == 1

    def test_end_units(self, row_placement):
        left = unit_context(row_placement, ("m", 0), TECH)
        assert left.run_left == 0
        assert left.run_right == 2
        right = unit_context(row_placement, ("m", 2), TECH)
        assert right.run_left == 2
        assert right.run_right == 0

    def test_runs_cross_device_boundaries(self):
        # Abutted units of *different* devices still share diffusion.
        p = Placement(CanvasSpec(4, 1))
        p.place(("a", 0), (0, 0))
        p.place(("b", 0), (1, 0))
        ctx = unit_context(p, ("b", 0), TECH)
        assert ctx.run_left == 1

    def test_run_stops_at_gap(self):
        p = Placement(CanvasSpec(6, 1))
        p.place(("a", 0), (0, 0))
        p.place(("a", 1), (2, 0))  # gap at column 1
        ctx = unit_context(p, ("a", 1), TECH)
        assert ctx.run_left == 0


class TestEdgeDistance:
    def test_corner_cell(self):
        p = Placement(CanvasSpec(6, 4))
        p.place(("m", 0), (0, 0))
        ctx = unit_context(p, ("m", 0), TECH)
        assert ctx.dist_to_edge == pytest.approx(0.5 * PITCH)

    def test_centre_cell(self):
        p = Placement(CanvasSpec(7, 7))
        p.place(("m", 0), (3, 3))
        ctx = unit_context(p, ("m", 0), TECH)
        assert ctx.dist_to_edge == pytest.approx(3.5 * PITCH)

    def test_edge_distance_uses_nearest_side(self, row_placement):
        ctx = unit_context(row_placement, ("m", 0), TECH)
        # col 1 of 6, row 2 of 4: nearest side is bottom (1.5 cells) vs
        # left (1.5 cells) — both 1.5.
        assert ctx.dist_to_edge == pytest.approx(1.5 * PITCH)


class TestDeviceContexts:
    def test_ordered_by_unit(self, row_placement):
        ctxs = device_contexts(row_placement, "m", TECH)
        assert [c.x for c in ctxs] == sorted(c.x for c in ctxs)

    def test_missing_device_rejected(self, row_placement):
        with pytest.raises(KeyError, match="no placed units"):
            device_contexts(row_placement, "ghost", TECH)
