"""Tests for the placement → UnitContext bridge."""

import numpy as np
import pytest

from repro.layout import (
    CanvasSpec,
    Placement,
    device_contexts,
    device_contexts_all,
    unit_context,
    unit_contexts,
)
from repro.tech import generic_tech_40

TECH = generic_tech_40()
PITCH = TECH.grid_pitch


@pytest.fixture
def row_placement():
    p = Placement(CanvasSpec(6, 4))
    for k in range(3):
        p.place(("m", k), (k + 1, 2))  # cells (1,2) (2,2) (3,2)
    return p


class TestPositions:
    def test_cell_centre_positions(self, row_placement):
        ctx = unit_context(row_placement, ("m", 0), TECH)
        assert ctx.x == pytest.approx(1.5 * PITCH)
        assert ctx.y == pytest.approx(2.5 * PITCH)

    def test_contexts_for_all(self, row_placement):
        ctxs = unit_contexts(row_placement, TECH)
        assert len(ctxs) == 3


class TestDiffusionRuns:
    def test_middle_unit_has_runs_both_sides(self, row_placement):
        ctx = unit_context(row_placement, ("m", 1), TECH)
        assert ctx.run_left == 1
        assert ctx.run_right == 1

    def test_end_units(self, row_placement):
        left = unit_context(row_placement, ("m", 0), TECH)
        assert left.run_left == 0
        assert left.run_right == 2
        right = unit_context(row_placement, ("m", 2), TECH)
        assert right.run_left == 2
        assert right.run_right == 0

    def test_runs_cross_device_boundaries(self):
        # Abutted units of *different* devices still share diffusion.
        p = Placement(CanvasSpec(4, 1))
        p.place(("a", 0), (0, 0))
        p.place(("b", 0), (1, 0))
        ctx = unit_context(p, ("b", 0), TECH)
        assert ctx.run_left == 1

    def test_run_stops_at_gap(self):
        p = Placement(CanvasSpec(6, 1))
        p.place(("a", 0), (0, 0))
        p.place(("a", 1), (2, 0))  # gap at column 1
        ctx = unit_context(p, ("a", 1), TECH)
        assert ctx.run_left == 0


class TestEdgeDistance:
    def test_corner_cell(self):
        p = Placement(CanvasSpec(6, 4))
        p.place(("m", 0), (0, 0))
        ctx = unit_context(p, ("m", 0), TECH)
        assert ctx.dist_to_edge == pytest.approx(0.5 * PITCH)

    def test_centre_cell(self):
        p = Placement(CanvasSpec(7, 7))
        p.place(("m", 0), (3, 3))
        ctx = unit_context(p, ("m", 0), TECH)
        assert ctx.dist_to_edge == pytest.approx(3.5 * PITCH)

    def test_edge_distance_uses_nearest_side(self, row_placement):
        ctx = unit_context(row_placement, ("m", 0), TECH)
        # col 1 of 6, row 2 of 4: nearest side is bottom (1.5 cells) vs
        # left (1.5 cells) — both 1.5.
        assert ctx.dist_to_edge == pytest.approx(1.5 * PITCH)


class TestDeviceContexts:
    def test_ordered_by_unit(self, row_placement):
        ctxs = device_contexts(row_placement, "m", TECH)
        assert [c.x for c in ctxs] == sorted(c.x for c in ctxs)

    def test_missing_device_rejected(self, row_placement):
        with pytest.raises(KeyError, match="no placed units"):
            device_contexts(row_placement, "ghost", TECH)


class TestVectorizedBatch:
    """The grid-vectorized batch path must match the scalar reference."""

    def test_empty_placement(self):
        p = Placement(CanvasSpec(4, 4))
        assert unit_contexts(p, TECH) == {}
        assert device_contexts_all(p, TECH) == {}

    def test_batch_matches_scalar_on_random_placements(self):
        rng = np.random.default_rng(7)
        for __ in range(20):
            cols = int(rng.integers(1, 9))
            rows = int(rng.integers(1, 7))
            p = Placement(CanvasSpec(cols, rows))
            cells = [(c, r) for c in range(cols) for r in range(rows)]
            rng.shuffle(cells)
            n_units = int(rng.integers(1, len(cells) + 1))
            per_device = {}
            for i, cell in enumerate(cells[:n_units]):
                name = f"d{i % 3}"
                index = per_device.get(name, 0)
                per_device[name] = index + 1
                p.place((name, index), cell)
            batch = unit_contexts(p, TECH)
            assert set(batch) == set(p.units)
            for unit, got in batch.items():
                assert got == unit_context(p, unit, TECH)

    def test_device_contexts_all_grouping(self, row_placement):
        row_placement.place(("other", 0), (0, 0))
        grouped = device_contexts_all(row_placement, TECH)
        assert set(grouped) == {"m", "other"}
        assert grouped["m"] == device_contexts(row_placement, "m", TECH)
        assert len(grouped["other"]) == 1
