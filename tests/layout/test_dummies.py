"""Tests for dummy-device insertion."""

import pytest

from repro.layout import CanvasSpec, Placement, banded_placement, unit_context
from repro.layout.dummies import (
    DUMMY_DEVICE,
    active_units,
    dummy_area_overhead,
    dummy_count,
    is_dummy,
    with_dummy_halo,
)
from repro.netlist import current_mirror
from repro.tech import generic_tech_40

TECH = generic_tech_40()


@pytest.fixture
def row():
    p = Placement(CanvasSpec(7, 5))
    for k in range(3):
        p.place(("m", k), (k + 2, 2))
    return p


class TestHalo:
    def test_halo_surrounds_row(self, row):
        haloed = with_dummy_halo(row)
        # 3 active cells in a row: halo = 3 above + 3 below + 2 left/right
        # columns x 3 rows minus the corners already counted... simply:
        # bounding box grows to 5x3 = 15 cells, 3 active -> 12 dummies.
        assert dummy_count(haloed) == 12
        assert len(active_units(haloed)) == 3

    def test_original_untouched(self, row):
        with_dummy_halo(row)
        assert len(row) == 3

    def test_every_active_side_covered(self, row):
        haloed = with_dummy_halo(row)
        for unit in active_units(haloed):
            ctx = unit_context(haloed, unit, TECH)
            assert ctx.run_left >= 1
            assert ctx.run_right >= 1

    def test_halo_clipped_at_canvas_edge(self):
        p = Placement(CanvasSpec(3, 3))
        p.place(("m", 0), (0, 0))
        haloed = with_dummy_halo(p)
        # Corner cell: only 3 in-bounds neighbours.
        assert dummy_count(haloed) == 3

    def test_double_halo_rejected(self, row):
        haloed = with_dummy_halo(row)
        with pytest.raises(ValueError, match="already contains"):
            with_dummy_halo(haloed)

    def test_four_adjacency_halo_smaller(self, row):
        eight = with_dummy_halo(row, adjacency=8)
        four = with_dummy_halo(row, adjacency=4)
        assert dummy_count(four) < dummy_count(eight)

    def test_deterministic(self, row):
        a = with_dummy_halo(row)
        b = with_dummy_halo(row)
        assert a.signature() == b.signature()


class TestAccounting:
    def test_is_dummy(self):
        assert is_dummy((DUMMY_DEVICE, 0))
        assert not is_dummy(("m1", 0))

    def test_area_overhead_positive(self, row):
        haloed = with_dummy_halo(row)
        assert dummy_area_overhead(haloed) > 0

    def test_area_overhead_zero_without_dummies(self, row):
        assert dummy_area_overhead(row) == pytest.approx(0.0)

    def test_overhead_requires_active_units(self):
        p = Placement(CanvasSpec(2, 2))
        p.place((DUMMY_DEVICE, 0), (0, 0))
        with pytest.raises(ValueError, match="active"):
            dummy_area_overhead(p)


class TestEvaluatorTransparency:
    def test_evaluator_accepts_dummied_placement(self):
        from repro.eval import PlacementEvaluator
        block = current_mirror()
        evaluator = PlacementEvaluator(block)
        bare = banded_placement(block, "ysym")
        haloed = with_dummy_halo(bare)
        bare_m = evaluator.evaluate(bare)
        halo_m = evaluator.evaluate(haloed)
        # Dummies change area and (through LOD runs) mismatch...
        assert halo_m["area_um2"] > bare_m["area_um2"]
        assert halo_m["mismatch_pct"] != pytest.approx(bare_m["mismatch_pct"])
        # ...but never the electrical netlist size.
        assert halo_m["wirelength_um"] == pytest.approx(bare_m["wirelength_um"])
