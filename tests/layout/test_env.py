"""Tests for the RL placement environment."""

import pytest

from repro.layout import PlacementEnv
from repro.netlist import current_mirror, five_transistor_ota


def area_objective(placement):
    return float(placement.area_cells())


@pytest.fixture
def env():
    return PlacementEnv(five_transistor_ota(), area_objective)


class TestBasics:
    def test_groups_enumerated(self, env):
        assert set(env.group_names) == {"tail", "input_pair", "pload"}

    def test_group_units(self, env):
        units = env.group_units("input_pair")
        assert set(units) == {("m1", 0), ("m1", 1), ("m2", 0), ("m2", 1)}

    def test_unknown_group_rejected(self, env):
        with pytest.raises(KeyError, match="group"):
            env.group_units("ghost")

    def test_cost_calls_objective(self, env):
        assert env.cost() == float(env.placement.area_cells())

    def test_bad_adjacency_rejected(self):
        with pytest.raises(ValueError, match="adjacency"):
            PlacementEnv(five_transistor_ota(), area_objective, adjacency=5)

    def test_reset_restores_initial(self, env):
        sig0 = env.placement.signature()
        moved = False
        for k in range(8):
            if env.step_group("input_pair", k):
                moved = True
                break
        assert moved
        assert env.placement.signature() != sig0
        env.reset()
        assert env.placement.signature() == sig0


class TestStates:
    def test_group_state_translation_invariant(self, env):
        state0 = env.group_state("input_pair")
        for k in range(8):
            if env.step_group("input_pair", k):
                break
        assert env.group_state("input_pair") == state0

    def test_group_state_changes_on_internal_move(self, env):
        state0 = env.group_state("input_pair")
        actions = env.legal_unit_actions("input_pair")
        assert actions
        local, direction = actions[0]
        assert env.step_unit("input_pair", local, direction)
        assert env.group_state("input_pair") != state0

    def test_group_state_distinguishes_devices(self, env):
        """Swapping units of *different* devices changes the state even
        though the occupied cells are identical."""
        units = env.group_units("input_pair")
        m1_0 = units.index(("m1", 0))
        state0 = env.group_state("input_pair")
        c1 = env.placement.cell_of(("m1", 0))
        c2 = env.placement.cell_of(("m2", 0))
        env.placement.move_many({("m1", 0): c2, ("m2", 0): c1})
        assert env.group_state("input_pair") != state0

    def test_global_state_tracks_group_motion(self, env):
        g0 = env.global_state()
        for k in range(8):
            if env.step_group("pload", k):
                break
        assert env.global_state() != g0


class TestSteps:
    def test_illegal_step_returns_false_and_leaves_placement(self, env):
        sig = env.placement.signature()
        results = [env.step_group("input_pair", k) for k in range(8)]
        legal_count = sum(results)
        assert legal_count == len(env.legal_group_actions("input_pair")) > 0
        # After all 8 attempts the placement moved; reset and check an
        # illegal direction alone does nothing.
        env.reset()
        illegal = [k for k in range(8) if k not in env.legal_group_actions("input_pair")]
        if illegal:
            assert not env.step_group("input_pair", illegal[0])
            assert env.placement.signature() == sig

    def test_undo_unit_restores(self, env):
        sig = env.placement.signature()
        actions = env.legal_unit_actions("pload")
        local, direction = actions[0]
        assert env.step_unit("pload", local, direction)
        env.undo_unit("pload", local, direction)
        assert env.placement.signature() == sig

    def test_undo_group_restores(self, env):
        sig = env.placement.signature()
        legal = env.legal_group_actions("tail")
        assert legal
        assert env.step_group("tail", legal[0])
        env.undo_group("tail", legal[0])
        assert env.placement.signature() == sig

    def test_unit_index_out_of_range(self, env):
        with pytest.raises(IndexError, match="unit index"):
            env.step_unit("tail", 99, 0)

    def test_legal_unit_actions_are_actually_legal(self, env):
        for group in env.group_names:
            for local, direction in env.legal_unit_actions(group):
                copy_env = PlacementEnv(env.block, area_objective)
                # Re-derive on a fresh env with same initial placement.
                assert copy_env.step_unit(group, local, direction)


class TestOnCurrentMirror:
    def test_env_builds_for_cm(self):
        env = PlacementEnv(current_mirror(), area_objective)
        assert len(env.group_names) == 2
        assert env.cost() > 0
