"""Tests for placement generators: legality, connectivity, symmetry."""

import pytest

from repro.layout import banded_placement, initial_placement, is_connected
from repro.netlist import (
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
)

ALL_BLOCKS = [current_mirror, comparator, folded_cascode_ota, five_transistor_ota]
ALL_STYLES = ["sequential", "ysym", "common_centroid"]


@pytest.mark.parametrize("builder", ALL_BLOCKS)
@pytest.mark.parametrize("style", ALL_STYLES)
class TestEveryBlockEveryStyle:
    def test_all_units_placed(self, builder, style):
        block = builder()
        placement = banded_placement(block, style)
        assert len(placement) == block.circuit.total_units()

    def test_every_group_connected(self, builder, style):
        block = builder()
        placement = banded_placement(block, style)
        for group in block.groups:
            cells = []
            for name in group.devices:
                device = block.circuit.device(name)
                cells.extend(
                    placement.cell_of((name, k)) for k in range(device.n_units)
                )
            assert is_connected(cells, adjacency=8), (group.name, style)

    def test_groups_connected_even_under_4adjacency(self, builder, style):
        block = builder()
        placement = banded_placement(block, style)
        for group in block.groups:
            cells = []
            for name in group.devices:
                device = block.circuit.device(name)
                cells.extend(
                    placement.cell_of((name, k)) for k in range(device.n_units)
                )
            assert is_connected(cells, adjacency=4), (group.name, style)


class TestStyleGeometry:
    def test_ysym_mirrors_pairs_about_axis(self):
        """In the Y-symmetric style every matched pair's centroids mirror
        about the placement's vertical centre axis."""
        block = five_transistor_ota()
        placement = banded_placement(block, "ysym")
        c0, __, c1, __ = placement.bounding_box()
        axis = (c0 + c1) / 2.0
        for pair in block.pairs:
            ax, ay = placement.device_centroid(pair.a)
            bx, by = placement.device_centroid(pair.b)
            assert ax - axis == pytest.approx(axis - bx, abs=1e-9), pair
            assert ay == pytest.approx(by, abs=1e-9), pair

    def test_common_centroid_coincident_pair_centroids(self):
        """Interdigitation makes matched-pair centroids coincide."""
        block = five_transistor_ota()
        placement = banded_placement(block, "common_centroid")
        for pair in block.pairs:
            ax, ay = placement.device_centroid(pair.a)
            bx, by = placement.device_centroid(pair.b)
            assert ax == pytest.approx(bx, abs=0.51), pair
            assert ay == pytest.approx(by, abs=0.51), pair

    def test_sequential_fills_rows_in_device_order(self):
        """Sequential style lays units device-after-device: within each
        band row, unit indices of a device increase left to right."""
        block = current_mirror()
        placement = banded_placement(block, "sequential")
        for device in block.circuit.placeable():
            cells = placement.device_cells(device.name)
            ordered = sorted(cells, key=lambda cr: (cr[1], cr[0]))
            assert cells == ordered, device.name

    def test_gap_rows_separate_bands(self):
        """With the default 1-row gap, no two groups touch vertically."""
        block = current_mirror()
        placement = banded_placement(block, "sequential", gap_rows=1)
        group_of = {}
        for group in block.groups:
            for name in group.devices:
                group_of[name] = group.name
        for unit in placement.units:
            c, r = placement.cell_of(unit)
            below = placement.unit_at((c, r + 1))
            if below is not None:
                assert group_of[below[0]] == group_of[unit[0]]

    def test_gap_rows_zero_packs_compactly(self):
        block = current_mirror()
        packed = banded_placement(block, "sequential", gap_rows=0)
        gapped = banded_placement(block, "sequential", gap_rows=1)
        assert packed.area_cells() < gapped.area_cells()

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError, match="gap_rows"):
            banded_placement(current_mirror(), "sequential", gap_rows=-1)

    def test_styles_differ(self):
        block = current_mirror()
        sigs = {banded_placement(block, s).signature() for s in ALL_STYLES}
        assert len(sigs) == 3

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="style"):
            banded_placement(current_mirror(), "spiral")

    def test_initial_placement_is_sequential(self):
        block = comparator()
        assert (initial_placement(block).signature()
                == banded_placement(block, "sequential").signature())

    def test_deterministic(self):
        block = folded_cascode_ota()
        a = banded_placement(block, "common_centroid")
        b = banded_placement(block, "common_centroid")
        assert a.signature() == b.signature()


class TestCanvasTooSmall:
    def test_rejects_insufficient_rows(self):
        import dataclasses
        block = five_transistor_ota()
        # 10 units on a 10x1 canvas: bands need 3 rows minimum.
        squeezed = dataclasses.replace(block, canvas=(10, 1))
        with pytest.raises(ValueError, match="rows"):
            banded_placement(squeezed, "sequential")
