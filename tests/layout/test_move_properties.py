"""Property tests: random legal-move walks preserve every invariant.

The environment guarantees three invariants forever: all units stay
placed (no loss), no two units overlap, and every group remains a single
connected cluster.  Hypothesis drives long random action sequences and
checks all three after every step.
"""

from hypothesis import given, settings, strategies as st

from repro.layout import PlacementEnv, is_connected
from repro.netlist import current_mirror, five_transistor_ota


def check_invariants(env):
    placement = env.placement
    # 1. all units placed exactly once
    assert len(placement) == env.block.circuit.total_units()
    # 2. occupancy is bijective
    seen_cells = set()
    for unit in placement.units:
        cell = placement.cell_of(unit)
        assert cell not in seen_cells
        seen_cells.add(cell)
        assert placement.unit_at(cell) == unit
    # 3. every group connected
    for group in env.block.groups:
        cells = []
        for name in group.devices:
            device = env.block.circuit.device(name)
            cells.extend(placement.cell_of((name, k)) for k in range(device.n_units))
        assert is_connected(cells, adjacency=env.adjacency), group.name


@given(moves=st.lists(
    st.tuples(
        st.booleans(),                        # unit move or group move
        st.integers(min_value=0, max_value=5),  # group pick (mod len)
        st.integers(min_value=0, max_value=30),  # action pick (mod len)
    ),
    min_size=1, max_size=60,
))
@settings(max_examples=30, deadline=None)
def test_random_walks_preserve_invariants(moves):
    env = PlacementEnv(five_transistor_ota(), lambda p: 0.0)
    for unit_move, group_pick, action_pick in moves:
        group = env.group_names[group_pick % len(env.group_names)]
        if unit_move:
            legal = env.legal_unit_actions(group)
            if legal:
                local, direction = legal[action_pick % len(legal)]
                assert env.step_unit(group, local, direction)
        else:
            legal = env.legal_group_actions(group)
            if legal:
                assert env.step_group(group, legal[action_pick % len(legal)])
        check_invariants(env)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_undo_restores_signature(seed):
    import numpy as np
    env = PlacementEnv(current_mirror(), lambda p: 0.0)
    rng = np.random.default_rng(seed)
    for __ in range(10):
        signature = env.placement.signature()
        group = env.group_names[int(rng.integers(len(env.group_names)))]
        legal = env.legal_unit_actions(group)
        if not legal:
            continue
        local, direction = legal[int(rng.integers(len(legal)))]
        assert env.step_unit(group, local, direction)
        env.undo_unit(group, local, direction)
        assert env.placement.signature() == signature
        # Re-apply to actually walk somewhere before the next round.
        assert env.step_unit(group, local, direction)
