"""Tests for the move set and legality rules, including the paper's
Fig. 2(b) scenario (5 of 8 moves legal)."""

import pytest

from repro.layout import (
    CanvasSpec,
    DIRECTIONS,
    Placement,
    apply_group_move,
    apply_unit_move,
    group_move_is_legal,
    is_connected,
    legal_group_moves,
    legal_unit_moves,
    neighbours,
    unit_move_is_legal,
)


class TestConnectivity:
    def test_single_cell_connected(self):
        assert is_connected([(0, 0)])

    def test_empty_connected(self):
        assert is_connected([])

    def test_row_connected(self):
        assert is_connected([(0, 0), (1, 0), (2, 0)])

    def test_gap_disconnected(self):
        assert not is_connected([(0, 0), (2, 0)])

    def test_diagonal_connected_under_8(self):
        assert is_connected([(0, 0), (1, 1)], adjacency=8)

    def test_diagonal_disconnected_under_4(self):
        assert not is_connected([(0, 0), (1, 1)], adjacency=4)

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            is_connected([(0, 0), (0, 0)])

    def test_bad_adjacency_rejected(self):
        with pytest.raises(ValueError, match="adjacency"):
            neighbours((0, 0), adjacency=6)

    def test_neighbour_counts(self):
        assert len(neighbours((0, 0), 8)) == 8
        assert len(neighbours((0, 0), 4)) == 4


class TestUnitMoves:
    def test_all_moves_legal_in_open_space(self):
        p = Placement(CanvasSpec(5, 5))
        p.place(("m", 0), (2, 2))
        assert len(legal_unit_moves(p, ("m", 0), [("m", 0)])) == 8

    def test_corner_unit_limited(self):
        p = Placement(CanvasSpec(5, 5))
        p.place(("m", 0), (0, 0))
        legal = legal_unit_moves(p, ("m", 0), [("m", 0)])
        assert len(legal) == 3  # E, S, SE

    def test_occupied_target_illegal(self):
        p = Placement(CanvasSpec(5, 5))
        p.place(("m", 0), (2, 2))
        p.place(("x", 0), (3, 2))
        assert not unit_move_is_legal(p, ("m", 0), (1, 0), [("m", 0)])

    def test_connectivity_preserving_moves_only(self):
        # Two units side by side: moving one two-cells-away equivalent
        # (e.g. west from the east unit) must keep contact.
        p = Placement(CanvasSpec(5, 5))
        a, b = ("m", 0), ("m", 1)
        p.place(a, (1, 1))
        p.place(b, (2, 1))
        # Moving b east keeps 8-contact? (3,1) vs (1,1): gap -> illegal.
        assert not unit_move_is_legal(p, b, (1, 0), [a, b], adjacency=8)
        # Moving b north-west to (1,0) touches a diagonally: legal under 8.
        assert unit_move_is_legal(p, b, (-1, -1), [a, b], adjacency=8)
        # ... but illegal under 4-adjacency? (1,0) is orthogonally adjacent
        # to (1,1), so still legal.
        assert unit_move_is_legal(p, b, (-1, -1), [a, b], adjacency=4)

    def test_fig2b_five_of_eight_moves(self):
        """Reconstruct the Fig. 2(b) situation: a unit at the corner of an
        L-shaped group has exactly 5 legal moves out of 8 — two targets are
        occupied by its own group, one would disconnect the group."""
        p = Placement(CanvasSpec(5, 5))
        group = [("g1", 0), ("g1", 1), ("g1", 2)]
        p.place(group[0], (1, 2))  # W neighbour
        p.place(group[1], (2, 2))  # the mover (corner of the L)
        p.place(group[2], (2, 3))  # S neighbour
        legal = legal_unit_moves(p, group[1], group, adjacency=8)
        # W and S occupied by the group; NE would disconnect the mover.
        assert len(legal) == 5
        directions = {DIRECTIONS[k] for k in legal}
        assert (1, -1) not in directions  # NE disconnects
        assert (-1, 0) not in directions  # W occupied

    def test_apply_unit_move(self):
        p = Placement(CanvasSpec(5, 5))
        p.place(("m", 0), (2, 2))
        apply_unit_move(p, ("m", 0), (1, 0))
        assert p.cell_of(("m", 0)) == (3, 2)


class TestGroupMoves:
    def setup_method(self):
        self.p = Placement(CanvasSpec(4, 4))
        self.group = [("g", 0), ("g", 1)]
        self.p.place(self.group[0], (0, 0))
        self.p.place(self.group[1], (1, 0))

    def test_internal_overlap_allowed(self):
        # Moving east: g0 moves onto g1's old cell — legal (vacated).
        assert group_move_is_legal(self.p, self.group, (1, 0))

    def test_boundary_blocks(self):
        assert not group_move_is_legal(self.p, self.group, (0, -1))

    def test_external_collision_blocks(self):
        self.p.place(("x", 0), (2, 0))
        assert not group_move_is_legal(self.p, self.group, (1, 0))

    def test_legal_group_moves_list(self):
        legal = legal_group_moves(self.p, self.group)
        # Top row, left corner: E, S, SE, SW (SW: g0->(-1,1)? no, out).
        # g0 at (0,0), g1 at (1,0): W/NW/N/NE/SW out of bounds or blocked.
        directions = [DIRECTIONS[k] for k in legal]
        assert (0, 1) in directions   # S
        assert (1, 0) in directions   # E
        assert (-1, 0) not in directions

    def test_apply_group_move(self):
        apply_group_move(self.p, self.group, (1, 1))
        assert self.p.cell_of(("g", 0)) == (1, 1)
        assert self.p.cell_of(("g", 1)) == (2, 1)
