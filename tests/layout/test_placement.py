"""Unit + property tests for the Placement container."""

import pytest
from hypothesis import given, strategies as st

from repro.layout import CanvasSpec, Placement


@pytest.fixture
def placement():
    p = Placement(CanvasSpec(4, 3))
    p.place(("m1", 0), (0, 0))
    p.place(("m1", 1), (1, 0))
    p.place(("m2", 0), (2, 1))
    return p


class TestCanvas:
    def test_bounds(self):
        canvas = CanvasSpec(4, 3)
        assert canvas.in_bounds((0, 0))
        assert canvas.in_bounds((3, 2))
        assert not canvas.in_bounds((4, 0))
        assert not canvas.in_bounds((0, -1))

    def test_n_cells(self):
        assert CanvasSpec(4, 3).n_cells == 12

    def test_bad_canvas_rejected(self):
        with pytest.raises(ValueError, match="canvas"):
            CanvasSpec(0, 3)


class TestPlaceMove:
    def test_place_and_query(self, placement):
        assert placement.cell_of(("m1", 0)) == (0, 0)
        assert placement.unit_at((0, 0)) == ("m1", 0)
        assert placement.unit_at((3, 2)) is None
        assert len(placement) == 3
        assert ("m1", 0) in placement

    def test_double_place_rejected(self, placement):
        with pytest.raises(ValueError, match="already placed"):
            placement.place(("m1", 0), (3, 2))

    def test_collision_rejected(self, placement):
        with pytest.raises(ValueError, match="occupied"):
            placement.place(("m3", 0), (0, 0))

    def test_out_of_bounds_rejected(self, placement):
        with pytest.raises(ValueError, match="bounds"):
            placement.place(("m3", 0), (9, 9))

    def test_move(self, placement):
        placement.move(("m1", 0), (3, 2))
        assert placement.cell_of(("m1", 0)) == (3, 2)
        assert placement.unit_at((0, 0)) is None

    def test_move_to_same_cell_is_noop(self, placement):
        placement.move(("m1", 0), (0, 0))
        assert placement.cell_of(("m1", 0)) == (0, 0)

    def test_move_unplaced_rejected(self, placement):
        with pytest.raises(KeyError, match="not placed"):
            placement.move(("ghost", 0), (3, 2))

    def test_move_collision_rejected(self, placement):
        with pytest.raises(ValueError, match="occupied"):
            placement.move(("m1", 0), (1, 0))


class TestMoveMany:
    def test_rigid_shift(self, placement):
        placement.move_many({("m1", 0): (0, 1), ("m1", 1): (1, 1)})
        assert placement.cell_of(("m1", 0)) == (0, 1)
        assert placement.cell_of(("m1", 1)) == (1, 1)

    def test_swap_within_set(self, placement):
        placement.move_many({("m1", 0): (1, 0), ("m1", 1): (0, 0)})
        assert placement.cell_of(("m1", 0)) == (1, 0)
        assert placement.cell_of(("m1", 1)) == (0, 0)

    def test_atomic_on_collision(self, placement):
        before = placement.as_dict()
        with pytest.raises(ValueError, match="occupied"):
            placement.move_many({("m1", 0): (2, 1), ("m1", 1): (3, 1)})
        assert placement.as_dict() == before

    def test_atomic_on_out_of_bounds(self, placement):
        before = placement.as_dict()
        with pytest.raises(ValueError, match="bounds"):
            placement.move_many({("m1", 0): (0, 1), ("m1", 1): (-1, 1)})
        assert placement.as_dict() == before

    def test_duplicate_target_rejected(self, placement):
        with pytest.raises(ValueError, match="same cell"):
            placement.move_many({("m1", 0): (0, 1), ("m1", 1): (0, 1)})


class TestGeometry:
    def test_device_cells_ordered(self, placement):
        assert placement.device_cells("m1") == [(0, 0), (1, 0)]

    def test_device_centroid(self, placement):
        assert placement.device_centroid("m1") == (0.5, 0.0)

    def test_missing_device_centroid(self, placement):
        with pytest.raises(KeyError, match="no placed units"):
            placement.device_centroid("ghost")

    def test_bounding_box_all(self, placement):
        assert placement.bounding_box() == (0, 0, 2, 1)

    def test_bounding_box_subset(self, placement):
        assert placement.bounding_box([("m1", 0), ("m1", 1)]) == (0, 0, 1, 0)

    def test_area_cells(self, placement):
        assert placement.area_cells() == 6  # 3 cols x 2 rows

    def test_empty_bbox_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Placement(CanvasSpec(2, 2)).bounding_box()


class TestCopyAndSignature:
    def test_copy_is_independent(self, placement):
        dup = placement.copy()
        dup.move(("m1", 0), (3, 2))
        assert placement.cell_of(("m1", 0)) == (0, 0)

    def test_signature_equal_for_equal_assignments(self, placement):
        assert placement.signature() == placement.copy().signature()

    def test_signature_changes_on_move(self, placement):
        sig = placement.signature()
        placement.move(("m1", 0), (3, 2))
        assert placement.signature() != sig


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)),
    min_size=1, max_size=20, unique=True,
))
def test_occupancy_inverse_invariant(cells):
    """Property: after arbitrary placements, cells and occupancy agree."""
    p = Placement(CanvasSpec(6, 6))
    for k, cell in enumerate(cells):
        p.place(("m", k), cell)
    for unit in p.units:
        assert p.unit_at(p.cell_of(unit)) == unit
    assert len(p.units) == len(cells)
