"""Tests for ASCII placement rendering."""

from repro.layout import banded_placement, device_labels, render_placement
from repro.netlist import five_transistor_ota


class TestRender:
    def test_renders_all_units(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "sequential")
        art = render_placement(placement, block.circuit, legend=False)
        filled = sum(1 for ch in art if ch not in ". \n")
        assert filled == block.circuit.total_units()

    def test_grid_dimensions(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "sequential")
        art = render_placement(placement, block.circuit, legend=False)
        rows = art.splitlines()
        assert len(rows) == placement.canvas.rows
        assert all(len(r.split()) == placement.canvas.cols for r in rows)

    def test_legend_lists_devices(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "sequential")
        art = render_placement(placement, block.circuit, legend=True)
        assert "legend:" in art
        for device in block.circuit.placeable():
            assert device.name in art

    def test_labels_unique_per_device(self):
        block = five_transistor_ota()
        labels = device_labels(block.circuit)
        assert len(set(labels.values())) == len(labels)
