"""Tests for SVG placement rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.layout import banded_placement
from repro.layout.dummies import with_dummy_halo
from repro.layout.svg import (
    DUMMY_FILL,
    device_colors,
    placement_to_svg,
    save_placement_svg,
)
from repro.netlist import five_transistor_ota

NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def block():
    return five_transistor_ota()


@pytest.fixture
def placement(block):
    return banded_placement(block, "common_centroid")


class TestSvg:
    def test_valid_xml(self, block, placement):
        svg = placement_to_svg(placement, block.circuit)
        root = ET.fromstring(svg)
        assert root.tag == f"{NS}svg"

    def test_one_rect_per_unit_plus_grid(self, block, placement):
        svg = placement_to_svg(placement, block.circuit, legend=False)
        root = ET.fromstring(svg)
        rects = root.findall(f"{NS}rect")
        grid = placement.canvas.n_cells
        # background + grid + units
        assert len(rects) == 1 + grid + len(placement)

    def test_legend_lists_devices(self, block, placement):
        svg = placement_to_svg(placement, block.circuit, legend=True)
        for device in block.circuit.placeable():
            assert f">{device.name}<" in svg

    def test_colors_unique_per_device(self, block):
        colors = device_colors(block.circuit)
        assert len(set(colors.values())) == len(colors)

    def test_dummies_rendered_grey(self, block, placement):
        haloed = with_dummy_halo(placement)
        svg = placement_to_svg(haloed, block.circuit)
        assert DUMMY_FILL in svg

    def test_titles_identify_units(self, block, placement):
        svg = placement_to_svg(placement, block.circuit)
        assert "<title>m1[0]</title>" in svg

    def test_cell_px_validation(self, block, placement):
        with pytest.raises(ValueError, match="cell_px"):
            placement_to_svg(placement, block.circuit, cell_px=2)

    def test_save_to_file(self, block, placement, tmp_path):
        path = tmp_path / "layout.svg"
        save_placement_svg(placement, block.circuit, str(path))
        assert path.read_text().startswith("<svg")
