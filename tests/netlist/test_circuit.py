"""Unit tests for the Circuit container."""

import pytest

from repro.netlist import Circuit, Mosfet, Resistor, VoltageSource


def simple_circuit():
    """A resistor-loaded NMOS common-source stage."""
    ckt = Circuit("cs_stage")
    ckt.add(VoltageSource("vvdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
    ckt.add(VoltageSource("vin", {"p": "in", "n": "gnd"}, dc=0.6))
    ckt.add(Resistor("rload", {"a": "vdd", "b": "out"}, value=10e3))
    ckt.add(Mosfet("m1", {"d": "out", "g": "in", "s": "gnd", "b": "gnd"},
                   polarity=+1, width=2e-6, length=0.2e-6, n_units=2))
    return ckt


class TestBuild:
    def test_add_and_lookup(self):
        ckt = simple_circuit()
        assert len(ckt) == 4
        assert ckt.device("m1").name == "m1"
        assert "m1" in ckt
        assert "mx" not in ckt

    def test_duplicate_name_rejected(self):
        ckt = simple_circuit()
        with pytest.raises(ValueError, match="duplicate"):
            ckt.add(Resistor("rload", {"a": "vdd", "b": "out"}))

    def test_unknown_lookup(self):
        with pytest.raises(KeyError, match="no device"):
            simple_circuit().device("zz")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Circuit("")

    def test_insertion_order_preserved(self):
        names = [d.name for d in simple_circuit()]
        assert names == ["vvdd", "vin", "rload", "m1"]

    def test_add_all_list(self):
        ckt = Circuit("c")
        ckt.add_all([
            VoltageSource("v1", {"p": "a", "n": "gnd"}),
            Resistor("r1", {"a": "a", "b": "gnd"}),
        ])
        assert len(ckt) == 2


class TestQueries:
    def test_nets_first_touch_order(self):
        ckt = simple_circuit()
        assert ckt.nets() == ("vdd", "gnd", "in", "out")

    def test_net_devices(self):
        ckt = simple_circuit()
        attached = ckt.net_devices("out")
        assert {(d.name, p) for d, p in attached} == {("rload", "b"), ("m1", "d")}

    def test_mosfets(self):
        assert [m.name for m in simple_circuit().mosfets()] == ["m1"]

    def test_placeable(self):
        assert [d.name for d in simple_circuit().placeable()] == ["m1"]

    def test_total_units(self):
        assert simple_circuit().total_units() == 2

    def test_connectivity_graph(self):
        graph = simple_circuit().connectivity_graph()
        assert graph.nodes["dev:m1"]["kind"] == "device"
        assert graph.has_edge("dev:m1", "net:out")

    def test_connectivity_graph_without_rails(self):
        graph = simple_circuit().connectivity_graph(include_rails=False)
        assert "net:gnd" not in graph


class TestCopyWith:
    def test_replace_device(self):
        ckt = simple_circuit()
        bigger = Mosfet("m1", {"d": "out", "g": "in", "s": "gnd", "b": "gnd"},
                        polarity=+1, width=8e-6, length=0.2e-6, n_units=8)
        new = ckt.copy_with(replacements={"m1": bigger})
        assert new.device("m1").n_units == 8
        assert ckt.device("m1").n_units == 2  # original untouched

    def test_append_extra(self):
        ckt = simple_circuit()
        new = ckt.copy_with(extra=[Resistor("r2", {"a": "out", "b": "gnd"})])
        assert len(new) == len(ckt) + 1

    def test_replace_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            simple_circuit().copy_with(
                replacements={"zz": Resistor("zz", {"a": "a", "b": "gnd"})}
            )


class TestValidate:
    def test_valid_circuit_passes(self):
        simple_circuit().validate()

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError, match="no devices"):
            Circuit("empty").validate()

    def test_missing_ground_rejected(self):
        ckt = Circuit("no_gnd")
        ckt.add(Resistor("r1", {"a": "x", "b": "y"}))
        ckt.add(Resistor("r2", {"a": "y", "b": "x"}))
        with pytest.raises(ValueError, match="ground"):
            ckt.validate()

    def test_dangling_net_rejected(self):
        ckt = simple_circuit()
        bad = ckt.copy_with(extra=[Resistor("rdangle", {"a": "out", "b": "nowhere"})])
        with pytest.raises(ValueError, match="dangling"):
            bad.validate()
