"""The constraint-extraction engine and the validation stage.

The golden tests pin the engine to the library's hand-written groups: on
all five evaluation blocks the extracted partition and the matched-pair
name-sets must reproduce the explicit annotations exactly.
"""

import pytest

from repro.netlist import (
    Circuit,
    CurrentSource,
    GroupKind,
    Mosfet,
    SuperGroup,
    VoltageSource,
    comparator,
    current_mirror,
    detect_groups,
    extract_constraints,
    five_transistor_ota,
    folded_cascode_ota,
    ingest_deck,
    two_stage_ota,
    validate_constraints,
    validate_pairs,
)
from repro.netlist.constraints import ConstraintSet, ConstraintValidationError

ALL_BLOCKS = [current_mirror, comparator, folded_cascode_ota,
              five_transistor_ota, two_stage_ota]


def _partition(groups):
    return {frozenset(g.devices) for g in groups}


def _kind_of(groups, member):
    return next(g.kind for g in groups if member in g.devices)


def _pair_set(pairs):
    return {frozenset((p.a, p.b)) for p in pairs}


def _nmos(name, d, g, s, w=2e-6, l=0.2e-6, m=2):  # noqa: E741
    return Mosfet(name, {"d": d, "g": g, "s": s, "b": "gnd"},
                  polarity=+1, width=w, length=l, n_units=m)


def _pmos(name, d, g, s, w=2e-6, l=0.2e-6, m=2):  # noqa: E741
    return Mosfet(name, {"d": d, "g": g, "s": s, "b": "vdd"},
                  polarity=-1, width=w, length=l, n_units=m)


@pytest.mark.parametrize("builder", ALL_BLOCKS)
class TestGolden:
    """The engine reproduces every library block's explicit annotations."""

    def test_partition_matches_library_groups(self, builder):
        block = builder()
        constraints = extract_constraints(block.circuit)
        assert _partition(constraints.groups) == _partition(block.groups)

    def test_group_kinds_match(self, builder):
        block = builder()
        constraints = extract_constraints(block.circuit)
        for group in block.groups:
            for member in group.devices:
                assert _kind_of(constraints.groups, member) == group.kind, member

    def test_pair_name_sets_match_exactly(self, builder):
        block = builder()
        constraints = extract_constraints(block.circuit)
        assert _pair_set(constraints.pairs) == _pair_set(block.pairs)

    def test_detect_groups_wrapper_agrees(self, builder):
        block = builder()
        groups, pairs = detect_groups(block.circuit)
        assert _partition(groups) == _partition(block.groups)
        assert _pair_set(pairs) == _pair_set(block.pairs)

    def test_validation_is_clean(self, builder):
        block = builder()
        report = validate_constraints(
            block.circuit, extract_constraints(block.circuit),
            kind=block.kind, params=block.params)
        assert report.ok and not report.warnings, report.summary()


class TestTemplates:
    def test_ratioed_mirror_groups_but_does_not_match(self):
        """Satellite bugfix: unequal mirror legs share the group, not a pair."""
        ckt = Circuit("ratioed")
        ckt.add(_nmos("mref", "bias", "bias", "gnd"))
        ckt.add(_nmos("mo1", "n1", "bias", "gnd"))
        ckt.add(_nmos("mo2", "n2", "bias", "gnd", w=4e-6, m=4))  # 2x leg
        ckt.add(CurrentSource("iref", {"p": "vdd", "n": "bias"}, dc=1e-5))
        ckt.add(VoltageSource("vvdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
        ckt.add(VoltageSource("vp1", {"p": "n1", "n": "gnd"}, dc=0.5))
        ckt.add(VoltageSource("vp2", {"p": "n2", "n": "gnd"}, dc=0.5))
        constraints = extract_constraints(ckt)
        assert _partition(constraints.groups) == {
            frozenset({"mref", "mo1", "mo2"})}
        assert _pair_set(constraints.pairs) == {frozenset({"mref", "mo1"})}

    def test_mirror_reference_pairs_weigh_double(self):
        constraints = extract_constraints(current_mirror().circuit)
        weights = {frozenset((p.a, p.b)): p.weight for p in constraints.pairs}
        assert weights[frozenset({"mref", "mo1"})] == 2.0
        assert weights[frozenset({"mo1", "mo2"})] == 1.0

    def test_cascode_pair_over_symmetric_branches(self):
        ckt = Circuit("cascode")
        ckt.add(_nmos("mref", "bias", "bias", "gnd"))
        ckt.add(_nmos("mo1", "y1", "bias", "gnd"))
        ckt.add(_nmos("mo2", "y2", "bias", "gnd"))
        ckt.add(_nmos("mc1", "o1", "cb", "y1", l=0.1e-6))
        ckt.add(_nmos("mc2", "o2", "cb", "y2", l=0.1e-6))
        ckt.add(CurrentSource("iref", {"p": "vdd", "n": "bias"}, dc=1e-5))
        ckt.add(VoltageSource("vvdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
        ckt.add(VoltageSource("vcb", {"p": "cb", "n": "gnd"}, dc=0.9))
        ckt.add(VoltageSource("vp1", {"p": "o1", "n": "gnd"}, dc=0.8))
        ckt.add(VoltageSource("vp2", {"p": "o2", "n": "gnd"}, dc=0.8))
        constraints = extract_constraints(ckt)
        assert _kind_of(constraints.groups, "mc1") is GroupKind.CASCODE_PAIR
        assert frozenset({"mc1", "mc2"}) in _partition(constraints.groups)

    def test_level_shifter_pair(self):
        ckt = Circuit("follower")
        ckt.add(_nmos("ma", "vdd", "ina", "oa"))
        ckt.add(_nmos("mb", "vdd", "inb", "ob"))
        ckt.add(CurrentSource("ia", {"p": "oa", "n": "gnd"}, dc=1e-5))
        ckt.add(CurrentSource("ib", {"p": "ob", "n": "gnd"}, dc=1e-5))
        ckt.add(VoltageSource("vvdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
        ckt.add(VoltageSource("va", {"p": "ina", "n": "gnd"}, dc=0.8))
        ckt.add(VoltageSource("vb", {"p": "inb", "n": "gnd"}, dc=0.8))
        constraints = extract_constraints(ckt)
        assert _kind_of(constraints.groups, "ma") is GroupKind.LEVEL_SHIFTER
        assert frozenset({"ma", "mb"}) in _pair_set(constraints.pairs)

    def test_device_array_of_parallel_units(self):
        ckt = Circuit("bank")
        ckt.add(_nmos("ma", "out", "bias", "gnd"))
        ckt.add(_nmos("mb", "out", "bias", "gnd"))
        ckt.add(_nmos("mc", "out", "bias", "gnd"))
        ckt.add(VoltageSource("vb", {"p": "bias", "n": "gnd"}, dc=0.6))
        ckt.add(VoltageSource("vo", {"p": "out", "n": "gnd"}, dc=0.6))
        constraints = extract_constraints(ckt)
        assert _partition(constraints.groups) == {frozenset({"ma", "mb", "mc"})}
        assert _kind_of(constraints.groups, "ma") is GroupKind.DEVICE_ARRAY
        assert len(constraints.pairs) == 3  # every parallel pair matched

    def test_extraction_is_deterministic(self):
        block = comparator()
        first = extract_constraints(block.circuit)
        second = extract_constraints(block.circuit)
        assert first.groups == second.groups
        assert first.pairs == second.pairs


class TestHierarchicalExtraction:
    DECK = """
    .subckt leg bias cb out
    mmmir mid bias gnd gnd nmos40 w=1e-06 l=5e-07 m=2
    mmcas out cb mid gnd nmos40 w=1e-06 l=2.5e-07 m=2
    .ends leg
    mmref bias bias gnd gnd nmos40 w=1e-06 l=5e-07 m=2
    xa bias cb na leg
    xb bias cb nb leg
    vvvdd vdd gnd dc 1.1 ac 0
    iiref vdd bias dc 2e-05 ac 0
    vvcb cb gnd dc 0.9 ac 0
    vvpa na gnd dc 0.8 ac 0
    vvpb nb gnd dc 0.8 ac 0
    .end
    """

    def test_matched_instances_become_a_super_group(self):
        result = ingest_deck(self.DECK, name="tree", kind="cm",
                             params={"iref": 2e-5, "vdd": 1.1,
                                     "probe_sources": ["vpa", "vpb"]})
        assert result.report.ok, result.report.summary()
        (sg,) = result.constraints.super_groups
        assert sg.name == "sym_a_b"
        group_names = {g.name for g in result.constraints.groups}
        assert set(sg.groups) <= group_names

    def test_cross_instance_pairs_are_emitted(self):
        result = ingest_deck(self.DECK, name="tree")
        pairs = _pair_set(result.constraints.pairs)
        assert frozenset({"a_mmir", "b_mmir"}) in pairs
        assert frozenset({"a_mcas", "b_mcas"}) in pairs

    def test_asymmetric_instances_do_not_match(self):
        deck = self.DECK.replace("vvpb nb gnd dc 0.8 ac 0",
                                 "rrload nb gnd 1000")
        result = ingest_deck(deck, name="tree")
        assert result.constraints.super_groups == ()


class TestValidatePairs:
    def test_unknown_device_rejected(self):
        block = five_transistor_ota()
        with pytest.raises(ValueError, match="non-placeable or unknown"):
            validate_pairs(block.circuit, list(block.groups),
                           [type(block.pairs[0])("m1", "ghost")])

    def test_cross_group_pair_needs_a_super_group(self):
        block = five_transistor_ota()
        pair = type(block.pairs[0])("m1", "mp1")  # input pair vs pmos load
        with pytest.raises(ValueError, match="share no super-group"):
            validate_pairs(block.circuit, list(block.groups), [pair])

    def test_super_group_allows_cross_group_pair(self):
        block = five_transistor_ota()
        pair = type(block.pairs[0])("m1", "mp1")
        alliance = SuperGroup("sym", ("input_pair", "pload"))
        validate_pairs(block.circuit, list(block.groups), [pair], [alliance])


class TestValidationReport:
    def test_dangling_net_is_an_error(self):
        ckt = Circuit("dangle")
        ckt.add(_nmos("m1", "floaty", "g1", "gnd"))
        ckt.add(VoltageSource("vg", {"p": "g1", "n": "gnd"}, dc=0.5))
        report = validate_constraints(ckt, extract_constraints(ckt))
        assert any(f.code == "dangling" for f in report.errors)

    def test_shorted_mosfet_is_an_error(self):
        ckt = Circuit("shorted")
        ckt.add(Mosfet("m1", {"d": "n", "g": "n", "s": "n", "b": "n"},
                       polarity=+1, width=2e-6, length=0.2e-6, n_units=1))
        ckt.add(VoltageSource("vn", {"p": "n", "n": "gnd"}, dc=0.5))
        report = validate_constraints(ckt, extract_constraints(ckt))
        assert any(f.code == "shorted" for f in report.errors)

    def test_missing_ground_is_an_error(self):
        ckt = Circuit("floating")
        ckt.add(Mosfet("m1", {"d": "a", "g": "b", "s": "c", "b": "c"},
                       polarity=+1, width=2e-6, length=0.2e-6, n_units=1))
        ckt.add(VoltageSource("va", {"p": "a", "n": "b"}, dc=0.5))
        ckt.add(VoltageSource("vc", {"p": "c", "n": "b"}, dc=0.1))
        report = validate_constraints(ckt, extract_constraints(ckt))
        assert any(f.code == "rail" and f.level == "error"
                   for f in report.findings)

    def test_mismatched_pair_is_an_error(self):
        block = five_transistor_ota()
        bad = ConstraintSet(
            groups=block.groups,
            pairs=block.pairs + (type(block.pairs[0])("m1", "mtail"),),
            super_groups=(SuperGroup("sym", ("input_pair", "tail")),),
        )
        report = validate_constraints(block.circuit, bad)
        assert any(f.code == "pair-size" for f in report.errors)

    def test_suite_contract_gaps_are_warnings(self):
        block = five_transistor_ota()
        report = validate_constraints(
            block.circuit, extract_constraints(block.circuit),
            kind="ota", params={})
        assert report.ok  # warnings never block registration
        assert any(f.code == "suite-contract" for f in report.warnings)

    def test_raise_if_errors(self):
        ckt = Circuit("dangle")
        ckt.add(_nmos("m1", "floaty", "g1", "gnd"))
        ckt.add(VoltageSource("vg", {"p": "g1", "n": "gnd"}, dc=0.5))
        report = validate_constraints(ckt, extract_constraints(ckt))
        with pytest.raises(ConstraintValidationError, match="dangling"):
            report.raise_if_errors()

    def test_summary_mentions_counts(self):
        block = current_mirror()
        report = validate_constraints(
            block.circuit, extract_constraints(block.circuit),
            kind="cm", params=block.params)
        assert "2 groups" in report.summary()
        assert "0 errors" in report.summary()
