"""Unit tests for device classes."""

import pytest

from repro.netlist import Capacitor, CurrentSource, Mosfet, Resistor, Vcvs, VoltageSource


def nmos(name="m1", **kw):
    conns = {"d": "out", "g": "in", "s": "gnd", "b": "gnd"}
    kwargs = dict(polarity=+1, width=2e-6, length=0.2e-6, n_units=2)
    kwargs.update(kw)
    return Mosfet(name, conns, **kwargs)


class TestMosfet:
    def test_ports(self):
        m = nmos()
        assert m.PORTS == ("d", "g", "s", "b")
        assert m.net("d") == "out"
        assert m.nets == ("out", "in", "gnd", "gnd")

    def test_placeable(self):
        assert nmos().is_placeable

    def test_unit_width(self):
        m = nmos(width=4e-6, n_units=4)
        assert m.unit_width == pytest.approx(1e-6)

    def test_unit_names(self):
        assert nmos(n_units=2).unit_names() == ("m1[0]", "m1[1]")

    def test_polarity_predicates(self):
        assert nmos(polarity=+1).is_nmos
        assert not nmos(polarity=+1).is_pmos

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            Mosfet("m1", {"d": "out", "g": "in", "s": "gnd"})

    def test_unknown_port_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Mosfet("m1", {"d": "a", "g": "b", "s": "c", "b": "d", "x": "e"})

    def test_bad_polarity_rejected(self):
        with pytest.raises(ValueError, match="polarity"):
            nmos(polarity=3)

    def test_bad_units_rejected(self):
        with pytest.raises(ValueError, match="n_units"):
            nmos(n_units=0)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            nmos(width=-1e-6)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            nmos(name="")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            nmos(name="m 1")

    def test_renamed(self):
        m = nmos().renamed("m2")
        assert m.name == "m2"
        assert m.width == nmos().width

    def test_unknown_port_lookup(self):
        with pytest.raises(KeyError):
            nmos().net("q")


class TestIdealElements:
    def test_resistor(self):
        r = Resistor("r1", {"a": "x", "b": "y"}, value=1e3)
        assert not r.is_placeable
        assert r.net("a") == "x"

    def test_resistor_value_positive(self):
        with pytest.raises(ValueError, match="resistance"):
            Resistor("r1", {"a": "x", "b": "y"}, value=0.0)

    def test_capacitor_value_positive(self):
        with pytest.raises(ValueError, match="capacitance"):
            Capacitor("c1", {"a": "x", "b": "y"}, value=-1e-15)

    def test_voltage_source(self):
        v = VoltageSource("v1", {"p": "vdd", "n": "gnd"}, dc=1.1, ac=1.0)
        assert v.dc == 1.1
        assert v.ac == 1.0

    def test_current_source(self):
        i = CurrentSource("i1", {"p": "vdd", "n": "bias"}, dc=20e-6)
        assert i.dc == pytest.approx(20e-6)

    def test_vcvs_ports(self):
        e = Vcvs("e1", {"p": "a", "n": "b", "cp": "c", "cn": "d"}, gain=2.0)
        assert e.PORTS == ("p", "n", "cp", "cn")
        assert e.gain == 2.0
