"""Hierarchical netlists: subckt definitions, flattening, scopes, errors."""

import pytest

from repro.netlist import (
    Circuit,
    CurrentSource,
    Flattened,
    HierarchicalCircuit,
    HierarchyError,
    Instance,
    Mosfet,
    SubcktDef,
    VoltageSource,
)


def _nmos(name, d, g, s):
    return Mosfet(name, {"d": d, "g": g, "s": s, "b": "gnd"},
                  polarity=+1, width=2e-6, length=0.2e-6, n_units=2)


def _half_cell():
    """A one-device subcircuit: drain on a port, source on an internal net."""
    return SubcktDef(
        name="half",
        ports=("inp", "out"),
        devices=(_nmos("m1", "out", "inp", "mid"), _nmos("m2", "mid", "inp", "gnd")),
    )


def _two_instance_circuit():
    hc = HierarchicalCircuit("pseudo_diff")
    hc.add_subckt(_half_cell())
    hc.add(VoltageSource("vvdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
    hc.add_instance(Instance("a", "half", ("ina", "oa")))
    hc.add_instance(Instance("b", "half", ("inb", "ob")))
    return hc


class TestFlatten:
    def test_devices_get_instance_prefixed_names(self):
        flat = _two_instance_circuit().flatten()
        names = {d.name for d in flat.circuit}
        assert {"a_m1", "a_m2", "b_m1", "b_m2", "vvdd"} == names

    def test_ports_bind_to_parent_nets(self):
        flat = _two_instance_circuit().flatten()
        assert flat.circuit.device("a_m1").net("g") == "ina"
        assert flat.circuit.device("a_m1").net("d") == "oa"
        assert flat.circuit.device("b_m1").net("g") == "inb"

    def test_internal_nets_are_prefixed(self):
        flat = _two_instance_circuit().flatten()
        assert flat.circuit.device("a_m1").net("s") == "a_mid"
        assert flat.circuit.device("b_m2").net("d") == "b_mid"

    def test_rails_pass_through_unprefixed(self):
        flat = _two_instance_circuit().flatten()
        assert flat.circuit.device("a_m2").net("s") == "gnd"
        assert flat.circuit.device("b_m2").net("b") == "gnd"

    def test_scopes_record_each_instance(self):
        flat = _two_instance_circuit().flatten()
        assert [s.path for s in flat.scopes] == ["a", "b"]
        assert flat.scopes[0].subckt == "half"
        assert flat.scopes[0].devices == ("a_m1", "a_m2")

    def test_flat_circuit_keeps_top_devices(self):
        flat = _two_instance_circuit().flatten()
        assert flat.circuit.device("vvdd").net("p") == "vdd"

    def test_nested_instances_join_paths_with_underscore(self):
        hc = HierarchicalCircuit("nested")
        hc.add_subckt(SubcktDef("leaf", ("t",),
                                devices=(_nmos("m1", "t", "t", "gnd"),)))
        hc.add_subckt(SubcktDef("mid", ("t",),
                                instances=(Instance("inner", "leaf", ("t",)),)))
        hc.add_instance(Instance("outer", "mid", ("top",)))
        flat = hc.flatten()
        assert {d.name for d in flat.circuit} == {"outer_inner_m1"}
        assert [s.path for s in flat.scopes] == ["outer", "outer_inner"]

    def test_flatten_of_flat_circuit_is_identity(self):
        hc = HierarchicalCircuit("plain")
        hc.add(_nmos("m1", "d1", "g1", "gnd"))
        assert hc.is_flat
        flat = hc.flatten()
        assert isinstance(flat, Flattened) and flat.scopes == ()
        assert {d.name for d in flat.circuit} == {"m1"}


class TestErrors:
    def test_unknown_subckt(self):
        hc = HierarchicalCircuit("bad")
        hc.add_instance(Instance("a", "nope", ("n1",)))
        with pytest.raises(HierarchyError, match="unknown subcircuit"):
            hc.flatten()

    def test_port_count_mismatch(self):
        hc = HierarchicalCircuit("bad")
        hc.add_subckt(_half_cell())
        hc.add_instance(Instance("a", "half", ("only_one",)))
        with pytest.raises(HierarchyError, match="2 ports"):
            hc.flatten()

    def test_recursive_instantiation(self):
        hc = HierarchicalCircuit("bad")
        hc.add_subckt(SubcktDef("loop", ("t",),
                                instances=(Instance("again", "loop", ("t",)),)))
        hc.add_instance(Instance("a", "loop", ("top",)))
        with pytest.raises(HierarchyError, match="recursive"):
            hc.flatten()

    def test_flat_name_collision(self):
        hc = HierarchicalCircuit("bad")
        hc.add_subckt(_half_cell())
        hc.add(_nmos("a_m1", "x", "y", "gnd"))  # collides with instance a's m1
        hc.add_instance(Instance("a", "half", ("ina", "oa")))
        with pytest.raises(HierarchyError):
            hc.flatten()

    def test_duplicate_subckt_definition(self):
        hc = HierarchicalCircuit("bad")
        hc.add_subckt(_half_cell())
        with pytest.raises(HierarchyError, match="duplicate"):
            hc.add_subckt(_half_cell())

    def test_instance_needs_bindings(self):
        with pytest.raises(HierarchyError, match="binds no nets"):
            Instance("a", "half", ())

    def test_subckt_needs_ports(self):
        with pytest.raises(HierarchyError, match="no ports"):
            SubcktDef("p0", ())

    def test_subckt_rejects_duplicate_element_names(self):
        with pytest.raises(HierarchyError, match="repeats an element"):
            SubcktDef("dup", ("t",),
                      devices=(_nmos("m1", "t", "t", "gnd"),
                               _nmos("m1", "t", "t", "gnd")))


class TestEquality:
    def test_structurally_equal(self):
        assert _two_instance_circuit() == _two_instance_circuit()

    def test_different_instances_differ(self):
        a, b = _two_instance_circuit(), _two_instance_circuit()
        b.add_instance(Instance("c", "half", ("inc", "oc")))
        assert a != b

    def test_current_source_inside_subckt(self):
        # Non-MOS devices flatten with the same renaming rules.
        hc = HierarchicalCircuit("isrc")
        hc.add_subckt(SubcktDef("cell", ("t",), devices=(
            CurrentSource("ib", {"p": "t", "n": "gnd"}, dc=1e-6),)))
        hc.add_instance(Instance("u", "cell", ("node",)))
        flat = hc.flatten()
        assert flat.circuit.device("u_ib").net("p") == "node"
