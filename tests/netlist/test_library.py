"""Tests for the circuit library blocks."""

import pytest

from repro.netlist import (
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
)

ALL_BLOCKS = [current_mirror, comparator, folded_cascode_ota, five_transistor_ota]


@pytest.mark.parametrize("builder", ALL_BLOCKS)
class TestEveryBlock:
    def test_netlist_validates(self, builder):
        builder().circuit.validate()

    def test_groups_partition_placeables(self, builder):
        block = builder()
        grouped = {name for g in block.groups for name in g.devices}
        placeable = {d.name for d in block.circuit.placeable()}
        assert grouped == placeable

    def test_canvas_holds_all_units_with_slack(self, builder):
        block = builder()
        cols, rows = block.canvas
        units = block.circuit.total_units()
        assert cols * rows >= units
        # Enough free cells to actually explore placements.
        assert cols * rows >= 1.2 * units

    def test_pairs_reference_real_devices(self, builder):
        block = builder()
        names = {d.name for d in block.circuit.placeable()}
        for pair in block.pairs:
            assert pair.a in names
            assert pair.b in names

    def test_paired_devices_have_identical_geometry(self, builder):
        block = builder()
        for pair in block.pairs:
            a = block.circuit.device(pair.a)
            b = block.circuit.device(pair.b)
            assert a.width == b.width, pair
            assert a.length == b.length, pair
            assert a.polarity == b.polarity, pair

    def test_input_nets_exist(self, builder):
        block = builder()
        nets = set(block.circuit.nets())
        for net in block.input_nets:
            assert net in nets

    def test_group_of(self, builder):
        block = builder()
        first = block.groups[0]
        assert block.group_of(first.devices[0]) == first
        with pytest.raises(KeyError):
            block.group_of("ghost")


class TestCurrentMirror:
    def test_has_two_mirror_groups(self):
        block = current_mirror()
        kinds = [g.kind.value for g in block.groups]
        assert kinds == ["current_mirror", "current_mirror"]

    def test_probe_sources_exist(self):
        block = current_mirror()
        for src in block.params["probe_sources"]:
            assert src in block.circuit

    def test_unit_scaling(self):
        block = current_mirror(units_per_device=8)
        assert block.circuit.device("mref").n_units == 8


class TestComparator:
    def test_strongarm_device_count(self):
        assert len(comparator().circuit.mosfets()) == 11

    def test_input_pair_heaviest_weight(self):
        block = comparator()
        weights = {p.names(): p.weight for p in block.pairs}
        assert weights[("m1", "m2")] == max(weights.values())

    def test_cross_coupled_connectivity(self):
        ckt = comparator().circuit
        m3, m4 = ckt.device("m3"), ckt.device("m4")
        assert m3.net("g") == m4.net("d")
        assert m4.net("g") == m3.net("d")


class TestFoldedCascodeOta:
    def test_six_groups_match_fig1a(self):
        block = folded_cascode_ota()
        assert len(block.groups) == 6
        names = {g.name for g in block.groups}
        assert names == {"tail", "input_pair", "nsink", "ncascode", "pcascode", "pmirror"}

    def test_pmos_input_pair(self):
        ckt = folded_cascode_ota().circuit
        assert ckt.device("m1").is_pmos
        assert ckt.device("m1").net("s") == ckt.device("m2").net("s")

    def test_folding_nodes_shared(self):
        ckt = folded_cascode_ota().circuit
        # Input drain and sink drain meet at the fold node.
        assert ckt.device("m1").net("d") == ckt.device("mn1").net("d")
        assert ckt.device("mc1").net("s") == ckt.device("m1").net("d")

    def test_bad_kind_rejected(self):
        import dataclasses
        block = folded_cascode_ota()
        with pytest.raises(ValueError, match="kind"):
            dataclasses.replace(block, kind="dac")

    def test_too_small_canvas_rejected(self):
        import dataclasses
        block = folded_cascode_ota()
        with pytest.raises(ValueError, match="cannot hold"):
            dataclasses.replace(block, canvas=(2, 2))
