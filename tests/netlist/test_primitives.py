"""Unit tests for grouping, matched pairs, and primitive detection."""

import pytest

from repro.netlist import (
    Circuit,
    Group,
    GroupKind,
    MatchedPair,
    Mosfet,
    VoltageSource,
    comparator,
    current_mirror,
    detect_groups,
    five_transistor_ota,
)
from repro.netlist.primitives import validate_groups


class TestGroup:
    def test_basic(self):
        g = Group("g0", GroupKind.DIFF_PAIR, ("a", "b"))
        assert g.devices == ("a", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Group("", GroupKind.SINGLE, ("a",))

    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError, match="devices"):
            Group("g", GroupKind.SINGLE, ())

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            Group("g", GroupKind.SINGLE, ("a", "a"))


class TestMatchedPair:
    def test_names(self):
        assert MatchedPair("a", "b").names() == ("a", "b")

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            MatchedPair("a", "a")

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            MatchedPair("a", "b", weight=0.0)


def _mos(name, d, g, s, polarity=+1, w=2e-6, l=0.2e-6):
    bulk = "gnd" if polarity > 0 else "vdd"
    return Mosfet(name, {"d": d, "g": g, "s": s, "b": bulk},
                  polarity=polarity, width=w, length=l, n_units=2)


class TestDetectGroups:
    def test_diff_pair_detected(self):
        ckt = Circuit("dp")
        ckt.add(_mos("m1", "o1", "inp", "tail"))
        ckt.add(_mos("m2", "o2", "inn", "tail"))
        groups, pairs = detect_groups(ckt)
        assert len(groups) == 1
        assert groups[0].kind == GroupKind.DIFF_PAIR
        assert {p.names() for p in pairs} == {("m1", "m2")}

    def test_current_mirror_detected(self):
        ckt = Circuit("cm")
        ckt.add(_mos("mref", "bias", "bias", "gnd"))
        ckt.add(_mos("mo1", "o1", "bias", "gnd"))
        ckt.add(_mos("mo2", "o2", "bias", "gnd"))
        groups, pairs = detect_groups(ckt)
        assert len(groups) == 1
        assert groups[0].kind == GroupKind.CURRENT_MIRROR
        assert len(pairs) == 3  # all combinations

    def test_cross_coupled_detected(self):
        ckt = Circuit("xc")
        ckt.add(_mos("m3", "outn", "outp", "gnd"))
        ckt.add(_mos("m4", "outp", "outn", "gnd"))
        groups, __ = detect_groups(ckt)
        assert groups[0].kind == GroupKind.CROSS_COUPLED

    def test_load_pair_detected(self):
        # Shared external gate bias, source on rail, no diode device.
        ckt = Circuit("lp")
        ckt.add(_mos("mn1", "f1", "vb", "gnd"))
        ckt.add(_mos("mn2", "f2", "vb", "gnd"))
        groups, __ = detect_groups(ckt)
        assert groups[0].kind == GroupKind.LOAD_PAIR

    def test_unmatched_leftover_is_single(self):
        ckt = Circuit("sg")
        ckt.add(_mos("mtail", "tail", "vb", "gnd", w=8e-6))
        groups, pairs = detect_groups(ckt)
        assert groups[0].kind == GroupKind.SINGLE
        assert pairs == []

    def test_different_sizes_do_not_pair(self):
        ckt = Circuit("dp2")
        ckt.add(_mos("m1", "o1", "inp", "tail", w=2e-6))
        ckt.add(_mos("m2", "o2", "inn", "tail", w=4e-6))
        groups, __ = detect_groups(ckt)
        assert all(g.kind == GroupKind.SINGLE for g in groups)

    def test_detection_on_5t_ota_matches_library(self):
        block = five_transistor_ota()
        groups, pairs = detect_groups(block.circuit)
        kinds = sorted(g.kind.value for g in groups)
        assert kinds == ["current_mirror", "diff_pair", "single"]
        assert {p.names() for p in pairs} == {("m1", "m2"), ("mp1", "mp2")}

    def test_detection_on_comparator_finds_latch_pairs(self):
        block = comparator()
        groups, __ = detect_groups(block.circuit)
        kinds = [g.kind for g in groups]
        assert kinds.count(GroupKind.CROSS_COUPLED) == 2
        assert GroupKind.DIFF_PAIR in kinds


class TestValidateGroups:
    def test_library_blocks_validate(self):
        for block in (current_mirror(), comparator(), five_transistor_ota()):
            validate_groups(block.circuit, list(block.groups))

    def test_unknown_device_rejected(self):
        block = five_transistor_ota()
        bad = list(block.groups) + [Group("zz", GroupKind.SINGLE, ("ghost",))]
        with pytest.raises(ValueError, match="non-placeable or unknown"):
            validate_groups(block.circuit, bad)

    def test_missing_device_rejected(self):
        block = five_transistor_ota()
        with pytest.raises(ValueError, match="not covered"):
            validate_groups(block.circuit, list(block.groups)[:-1])

    def test_double_membership_rejected(self):
        block = five_transistor_ota()
        bad = list(block.groups) + [Group("dup", GroupKind.SINGLE, ("m1",))]
        with pytest.raises(ValueError, match="two groups"):
            validate_groups(block.circuit, bad)

    def test_testbench_element_in_group_rejected(self):
        ckt = Circuit("c")
        ckt.add(VoltageSource("v1", {"p": "a", "n": "gnd"}))
        ckt.add(_mos("m1", "a", "a", "gnd"))
        with pytest.raises(ValueError, match="non-placeable"):
            validate_groups(ckt, [Group("g", GroupKind.SINGLE, ("m1", "v1"))])
