"""Tests for signal-flow-graph levelling and ordering."""

import pytest

from repro.netlist import (
    comparator,
    five_transistor_ota,
    folded_cascode_ota,
    signal_flow_levels,
    signal_flow_order,
)
from repro.netlist.sfg import device_levels


class TestDeviceLevels:
    def test_5t_ota_levels(self):
        block = five_transistor_ota()
        levels = device_levels(block.circuit, block.input_nets)
        # Input pair touches the inputs directly.
        assert levels["m1"] == 0
        assert levels["m2"] == 0
        # Tail and loads are one device hop away.
        assert levels["mtail"] == 1
        assert levels["mp1"] == 1
        assert levels["mp2"] == 1

    def test_requires_input_nets(self):
        block = five_transistor_ota()
        with pytest.raises(ValueError, match="input net"):
            device_levels(block.circuit, ())

    def test_unknown_input_net_rejected(self):
        block = five_transistor_ota()
        with pytest.raises(ValueError, match="touches"):
            device_levels(block.circuit, ("no_such_net",))

    def test_folded_cascode_depth_increases_downstream(self):
        block = folded_cascode_ota()
        levels = device_levels(block.circuit, block.input_nets)
        assert levels["m1"] == 0
        assert levels["mc1"] == 1    # fold node neighbour
        assert levels["mp1"] > levels["mc1"] or levels["mp1"] >= 1


class TestGroupOrdering:
    def test_input_pair_first_for_all_blocks(self):
        for builder in (five_transistor_ota, folded_cascode_ota, comparator):
            block = builder()
            order = signal_flow_order(block.circuit, block.groups, block.input_nets)
            assert order[0].name == "input_pair", block.name

    def test_levels_cover_all_groups(self):
        block = folded_cascode_ota()
        levels = signal_flow_levels(block.circuit, block.groups, block.input_nets)
        assert set(levels) == {g.name for g in block.groups}

    def test_order_is_deterministic(self):
        block = comparator()
        a = signal_flow_order(block.circuit, block.groups, block.input_nets)
        b = signal_flow_order(block.circuit, block.groups, block.input_nets)
        assert [g.name for g in a] == [g.name for g in b]
