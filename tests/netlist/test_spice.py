"""Tests for SPICE export/import, including full round trips."""

import pytest

from repro.netlist import (
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
)
from repro.netlist.spice import SpiceFormatError, from_spice, to_spice
from repro.sim import solve_dc
from repro.tech import generic_tech_40

TECH = generic_tech_40()
ALL_BLOCKS = [current_mirror, comparator, folded_cascode_ota, five_transistor_ota]


@pytest.mark.parametrize("builder", ALL_BLOCKS)
class TestRoundTrip:
    def test_device_set_preserved(self, builder):
        original = builder().circuit
        restored = from_spice(to_spice(original, TECH))
        assert {d.name for d in original} == {d.name for d in restored}

    def test_connectivity_preserved(self, builder):
        original = builder().circuit
        restored = from_spice(to_spice(original, TECH))
        for device in original:
            twin = restored.device(device.name)
            assert device.conns == twin.conns, device.name

    def test_mosfet_parameters_preserved(self, builder):
        original = builder().circuit
        restored = from_spice(to_spice(original, TECH))
        for mosfet in original.mosfets():
            twin = restored.device(mosfet.name)
            assert twin.polarity == mosfet.polarity
            assert twin.n_units == mosfet.n_units
            assert twin.width == pytest.approx(mosfet.width, rel=1e-5)
            assert twin.length == pytest.approx(mosfet.length, rel=1e-5)

    def test_restored_circuit_simulates_identically(self, builder):
        original = builder().circuit
        restored = from_spice(to_spice(original, TECH))
        a = solve_dc(original, TECH)
        b = solve_dc(restored, TECH)
        for net in original.nets():
            assert b.voltage(net) == pytest.approx(a.voltage(net), abs=2e-5), net


class TestDeckFormat:
    def test_model_cards_emitted_with_tech(self):
        deck = to_spice(current_mirror().circuit, TECH)
        assert ".model nmos40 nmos" in deck
        assert ".model pmos40 pmos" in deck
        assert "level=1" in deck

    def test_no_models_without_tech(self):
        deck = to_spice(current_mirror().circuit)
        assert ".model" not in deck

    def test_ends_with_end_card(self):
        assert to_spice(current_mirror().circuit).rstrip().endswith(".end")

    def test_finger_notation(self):
        deck = to_spice(current_mirror().circuit, TECH)
        assert "m=4" in deck  # 4-unit devices exported as multiplier


class TestParser:
    def test_parse_hand_written_deck(self):
        deck = """
        * a divider with a switch
        .model nmos40 nmos (level=1 vto=0.45 kp=4e-4)
        vsup in 0 dc 1.1 ac 1
        r1 in mid 1k_is_not_supported_so_plain
        """
        # plain numbers only — rewrite the resistor line properly:
        deck = deck.replace("1k_is_not_supported_so_plain", "1000")
        deck += "mswitch mid gate 0 0 nmos40 w=1e-6 l=1.5e-7 m=2\n"
        deck += "vg gate 0 0.6\n.end\n"
        ckt = from_spice(deck)
        assert len(ckt) == 4
        m = ckt.device("switch")
        assert m.is_nmos
        assert m.n_units == 2
        assert ckt.device("sup").ac == 1.0
        assert ckt.device("g").dc == pytest.approx(0.6)

    def test_continuation_lines(self):
        deck = ("vs a 0 dc 1\n"
                "rload a\n"
                "+ 0 500\n"
                ".end\n")
        ckt = from_spice(deck)
        assert ckt.device("load").value == pytest.approx(500)

    def test_comments_ignored(self):
        deck = "* top\nvs a 0 1 ; trailing comment\nr1 a 0 100\n.end\n"
        ckt = from_spice(deck)
        assert len(ckt) == 2

    def test_pmos_model_suffix_fallback(self):
        deck = "mx d g s b my_pmos_model w=1e-6 l=1e-7\nvd d 0 1\nvg g 0 0\nvs s 0 1\nvb b 0 1\n"
        ckt = from_spice(deck)
        assert ckt.device("x").is_pmos

    def test_orphan_continuation_rejected(self):
        with pytest.raises(SpiceFormatError, match="continuation"):
            from_spice("+ r1 a b 100\n")

    def test_unsupported_element_rejected(self):
        with pytest.raises(SpiceFormatError, match="unsupported"):
            from_spice("lchoke a b 1e-9\n")

    def test_bad_mosfet_card_rejected(self):
        with pytest.raises(SpiceFormatError, match="mosfet"):
            from_spice("m1 d g s\n")

    def test_bad_source_spec_rejected(self):
        with pytest.raises(SpiceFormatError, match="source"):
            from_spice("v1 a 0 dc\n")

    def test_bad_kv_rejected(self):
        with pytest.raises(SpiceFormatError, match="key=value"):
            from_spice("m1 d g s b nmos40 w 1e-6\n")
