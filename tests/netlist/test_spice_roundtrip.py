"""Property-based SPICE round trips: export → import → export is identity.

Widths are drawn from a power-of-two grid so the exporter's per-unit
width division (``w = width / n_units``) is exact in floating point —
the identity claimed here is bit-exact, not approximate.
"""

from hypothesis import given, settings, strategies as st

from repro.netlist import (
    Capacitor,
    Circuit,
    HierarchicalCircuit,
    Instance,
    Mosfet,
    Resistor,
    SubcktDef,
    VoltageSource,
)
from repro.netlist.spice import from_spice, parse_spice, to_spice

NETS = ("gnd", "vdd", "n1", "n2", "n3", "n4")
UNIT_WIDTHS = (0.5e-6, 1e-6, 2e-6, 4e-6)
LENGTHS = (0.1e-6, 0.2e-6, 0.5e-6)
N_UNITS = (1, 2, 4)


@st.composite
def mosfets(draw, index: int = 0, nets=NETS):
    n_units = draw(st.sampled_from(N_UNITS))
    return Mosfet(
        f"m{index}",
        {
            "d": draw(st.sampled_from(nets)),
            "g": draw(st.sampled_from(nets)),
            "s": draw(st.sampled_from(nets)),
            "b": draw(st.sampled_from(("gnd", "vdd"))),
        },
        polarity=draw(st.sampled_from((+1, -1))),
        width=draw(st.sampled_from(UNIT_WIDTHS)) * n_units,
        length=draw(st.sampled_from(LENGTHS)),
        n_units=n_units,
    )


@st.composite
def flat_circuits(draw):
    ckt = Circuit("prop")
    for i in range(draw(st.integers(1, 5))):
        ckt.add(draw(mosfets(index=i)))
    for i in range(draw(st.integers(0, 2))):
        p, n = draw(st.sampled_from([
            (a, b) for a in NETS for b in NETS if a != b]))
        ckt.add(VoltageSource(f"v{i}", {"p": p, "n": n},
                              dc=draw(st.sampled_from((0.0, 0.55, 1.1)))))
    if draw(st.booleans()):
        ckt.add(Resistor("r0", {"a": "n1", "b": "n2"},
                         value=draw(st.sampled_from((100.0, 1500.0)))))
    if draw(st.booleans()):
        ckt.add(Capacitor("c0", {"a": "n3", "b": "gnd"},
                          value=draw(st.sampled_from((1e-14, 1e-12)))))
    return ckt


@st.composite
def hierarchical_circuits(draw):
    cell_nets = ("p1", "p2", "w1", "gnd")
    devices = tuple(
        draw(mosfets(index=i, nets=cell_nets))
        for i in range(draw(st.integers(1, 2)))
    )
    hc = HierarchicalCircuit("prop_hier")
    hc.add_subckt(SubcktDef("cell", ("p1", "p2"), devices=devices))
    hc.add(VoltageSource("vvdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
    for name in ("a", "b")[: draw(st.integers(1, 2))]:
        hc.add_instance(Instance(
            name, "cell",
            (draw(st.sampled_from(NETS)), draw(st.sampled_from(NETS))),
        ))
    return hc


class TestFlatRoundTrip:
    @given(flat_circuits())
    @settings(max_examples=40, deadline=None)
    def test_import_of_export_preserves_everything(self, ckt):
        restored = from_spice(to_spice(ckt), name=ckt.name)
        assert {d.name for d in ckt} == {d.name for d in restored}
        for device in ckt:
            twin = restored.device(device.name)
            assert twin.conns == device.conns
            assert type(twin) is type(device)
        for mosfet in ckt.mosfets():
            twin = restored.device(mosfet.name)
            assert twin.polarity == mosfet.polarity
            assert twin.n_units == mosfet.n_units
            assert twin.width == mosfet.width      # exact: power-of-two grid
            assert twin.length == mosfet.length

    @given(flat_circuits())
    @settings(max_examples=40, deadline=None)
    def test_export_is_idempotent(self, ckt):
        deck = to_spice(ckt)
        assert to_spice(from_spice(deck, name=ckt.name)) == deck


class TestHierarchicalRoundTrip:
    @given(hierarchical_circuits())
    @settings(max_examples=40, deadline=None)
    def test_parse_of_export_is_structurally_identical(self, hc):
        assert parse_spice(to_spice(hc), name=hc.name) == hc

    @given(hierarchical_circuits())
    @settings(max_examples=40, deadline=None)
    def test_export_is_idempotent(self, hc):
        deck = to_spice(hc)
        assert to_spice(parse_spice(deck, name=hc.name)) == deck

    @given(hierarchical_circuits())
    @settings(max_examples=40, deadline=None)
    def test_flatten_commutes_with_round_trip(self, hc):
        direct = hc.flatten().circuit
        rebuilt = parse_spice(to_spice(hc), name=hc.name).flatten().circuit
        assert {d.name for d in direct} == {d.name for d in rebuilt}
        for device in direct:
            assert rebuilt.device(device.name).conns == device.conns
