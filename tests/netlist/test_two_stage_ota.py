"""Tests for the two-stage Miller OTA extension block."""

import pytest

from repro.eval import PlacementEvaluator
from repro.layout import banded_placement
from repro.netlist import two_stage_ota
from repro.sim import solve_dc
from repro.sim.mosfet import terminal_currents
from repro.tech import generic_tech_40

TECH = generic_tech_40()


@pytest.fixture(scope="module")
def block():
    return two_stage_ota()


@pytest.fixture(scope="module")
def op(block):
    """Closed-loop (unity-buffer) operating point.

    Open loop, a 100 dB amplifier rails on any mV-level imbalance — the
    measurement suite always biases through feedback, and so do these
    tests.
    """
    from repro.netlist import Vcvs
    feedback = Vcvs("vvin", {"p": "vin", "n": "gnd", "cp": "outp", "cn": "gnd"},
                    gain=1.0)
    closed = block.circuit.copy_with(replacements={"vvin": feedback})
    return solve_dc(closed, TECH)


class TestBias:
    def test_dc_converges(self, op):
        for net, v in op.voltages.items():
            assert -0.1 <= v <= 1.2, (net, v)

    def test_first_stage_balanced(self, op):
        # Matched loads: the mirror holds x1 ~ x2 at balance.
        assert op.voltage("x1") == pytest.approx(op.voltage("x2"), abs=0.05)

    def test_buffer_tracks_input(self, op, block):
        # Unity feedback: output = vcm + offset, offset well under 10 mV.
        assert op.voltage("outp") == pytest.approx(block.params["vcm"], abs=0.01)

    def test_gain_devices_saturated(self, block, op):
        for name in ("m1", "m2", "m6", "m7"):
            m = block.circuit.device(name)
            point = terminal_currents(
                TECH.params_for(m.polarity), m.width, m.length,
                op.voltage(m.net("d")), op.voltage(m.net("g")),
                op.voltage(m.net("s")), op.voltage(m.net("b")),
            )
            assert point.saturated, name


class TestSmallSignal:
    @pytest.fixture(scope="class")
    def metrics(self, block):
        evaluator = PlacementEvaluator(block)
        return evaluator.evaluate(banded_placement(block, "common_centroid"))

    def test_two_stage_gain(self, metrics):
        # Two gain stages: comfortably more than a single 5T stage.
        assert metrics["gain_db"] > 80

    def test_miller_compensated_pm(self, metrics):
        assert 50 < metrics["pm_deg"] < 80

    def test_gbw_set_by_miller_cap(self, metrics):
        # GBW ~ gm1 / (2 pi Cc): order 100 MHz for this sizing.
        assert 5e7 < metrics["gbw_hz"] < 1e9

    def test_offset_sub_mv_when_symmetric(self, metrics):
        assert metrics["offset_mv"] < 1.0


class TestPlacementFlow:
    def test_all_styles_place(self, block):
        for style in ("sequential", "ysym", "common_centroid"):
            placement = banded_placement(block, style)
            assert len(placement) == block.circuit.total_units()

    def test_optimizable(self, block):
        from repro.core import MultiLevelPlacer
        from repro.layout import PlacementEnv
        evaluator = PlacementEvaluator(block)
        target = evaluator.cost(banded_placement(block, "common_centroid"))
        env = PlacementEnv(block, evaluator.cost)
        placer = MultiLevelPlacer(env, seed=1,
                                  sim_counter=lambda: evaluator.sim_count)
        result = placer.optimize(max_steps=80, target=target)
        assert result.best_cost <= result.initial_cost
