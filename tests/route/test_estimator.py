"""Tests for wirelength estimation."""

import pytest

from repro.layout import banded_placement
from repro.netlist import current_mirror, five_transistor_ota
from repro.route import net_hpwl, net_pin_positions, signal_nets, total_wirelength
from repro.tech import generic_tech_40

TECH = generic_tech_40()


class TestSignalNets:
    def test_rails_excluded(self):
        block = five_transistor_ota()
        nets = signal_nets(block.circuit)
        assert "vdd" not in nets
        assert "gnd" not in nets

    def test_single_pin_nets_excluded(self):
        block = five_transistor_ota()
        nets = signal_nets(block.circuit)
        # Inputs vip/vin touch only one placeable device each.
        assert "vip" not in nets
        assert "vin" not in nets

    def test_internal_nets_included(self):
        block = five_transistor_ota()
        nets = signal_nets(block.circuit)
        assert "tail" in nets
        assert "x" in nets
        assert "outp" in nets


class TestHpwl:
    def test_pin_positions_per_attachment(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "sequential")
        # Net "x": m1 drain + mp1 drain + mp1 gate + mp2 gate = 4 pins
        # (3 devices, mp1 attached twice).
        pins = net_pin_positions(block.circuit, placement, "x", TECH)
        assert len(pins) == 4

    def test_hpwl_zero_for_degenerate(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "sequential")
        assert net_hpwl(block.circuit, placement, "vip", TECH) == 0.0

    def test_hpwl_positive_for_spanning_net(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "sequential")
        assert net_hpwl(block.circuit, placement, "tail", TECH) > 0

    def test_hpwl_shrinks_when_devices_close(self):
        block = current_mirror()
        near = banded_placement(block, "sequential")
        hp_near = net_hpwl(block.circuit, near, "bias", TECH)
        # Spread the mirror apart: move mo2's units to the far corner area.
        far = near.copy()
        free = [
            (c, r)
            for r in range(far.canvas.rows)
            for c in range(far.canvas.cols)
            if far.is_free((c, r))
        ]
        targets = {("mo2", k): free[-(k + 1)] for k in range(4)}
        far.move_many(targets)
        hp_far = net_hpwl(block.circuit, far, "bias", TECH)
        assert hp_far > hp_near

    def test_total_wirelength_sums_nets(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "sequential")
        total = total_wirelength(block.circuit, placement, TECH)
        parts = sum(
            net_hpwl(block.circuit, placement, n, TECH)
            for n in signal_nets(block.circuit)
        )
        assert total == pytest.approx(parts)
