"""Tests for MST wirelength estimation and its relation to HPWL."""

import pytest

from repro.layout import banded_placement
from repro.netlist import comparator, current_mirror, five_transistor_ota
from repro.route import net_hpwl, signal_nets
from repro.route.mst import net_mst, rectilinear_mst_length, total_mst_wirelength
from repro.tech import generic_tech_40

TECH = generic_tech_40()


class TestMstGeometry:
    def test_empty_and_single_pin(self):
        assert rectilinear_mst_length([]) == 0.0
        assert rectilinear_mst_length([(0.0, 0.0)]) == 0.0

    def test_two_pins_manhattan(self):
        assert rectilinear_mst_length([(0, 0), (3, 4)]) == pytest.approx(7.0)

    def test_three_collinear(self):
        # MST chains them: 1 + 1, not 2 + 2.
        assert rectilinear_mst_length([(0, 0), (1, 0), (2, 0)]) == pytest.approx(2.0)

    def test_l_shape(self):
        pins = [(0, 0), (2, 0), (2, 2)]
        assert rectilinear_mst_length(pins) == pytest.approx(4.0)

    def test_star_vs_hpwl_gap(self):
        # Four corner pins: HPWL = 2+2 = 4, MST = 3 edges of length 2 = 6.
        pins = [(0, 0), (2, 0), (0, 2), (2, 2)]
        assert rectilinear_mst_length(pins) == pytest.approx(6.0)


@pytest.mark.parametrize("builder", [current_mirror, comparator, five_transistor_ota])
class TestMstVsHpwl:
    def test_mst_at_least_hpwl_over_2(self, builder):
        """Known bounds: HPWL/2 <= MST for every net (HPWL can exceed MST
        only by its double-counted half-perimeter)."""
        block = builder()
        placement = banded_placement(block, "sequential")
        for net in signal_nets(block.circuit):
            hpwl = net_hpwl(block.circuit, placement, net, TECH)
            mst = net_mst(block.circuit, placement, net, TECH)
            assert mst >= 0.5 * hpwl - 1e-15, net

    def test_mst_equals_manhattan_for_two_pin_nets(self, builder):
        block = builder()
        placement = banded_placement(block, "sequential")
        for net in signal_nets(block.circuit):
            pins = []
            from repro.route import net_pin_positions
            pins = net_pin_positions(block.circuit, placement, net, TECH)
            if len(pins) == 2:
                mst = net_mst(block.circuit, placement, net, TECH)
                (x1, y1), (x2, y2) = pins
                assert mst == pytest.approx(abs(x1 - x2) + abs(y1 - y2))

    def test_total_positive(self, builder):
        block = builder()
        placement = banded_placement(block, "sequential")
        assert total_mst_wirelength(block.circuit, placement, TECH) > 0
