"""Tests for parasitic annotation."""

import pytest

from repro.layout import banded_placement
from repro.netlist import five_transistor_ota
from repro.netlist.devices import Capacitor
from repro.route import annotate_parasitics, parasitic_caps, signal_nets
from repro.route.parasitics import C_FLOOR
from repro.sim import solve_dc
from repro.tech import generic_tech_40

TECH = generic_tech_40()


class TestParasiticCaps:
    def setup_method(self):
        self.block = five_transistor_ota()
        self.placement = banded_placement(self.block, "sequential")

    def test_every_signal_net_capped(self):
        caps = parasitic_caps(self.block.circuit, self.placement, TECH)
        assert set(caps) == set(signal_nets(self.block.circuit))

    def test_floor_applies(self):
        caps = parasitic_caps(self.block.circuit, self.placement, TECH)
        assert all(c >= C_FLOOR for c in caps.values())

    def test_magnitude_is_femtofarad_scale(self):
        caps = parasitic_caps(self.block.circuit, self.placement, TECH)
        for net, c in caps.items():
            assert 1e-17 < c < 1e-13, (net, c)

    def test_caps_grow_with_wirelength(self):
        caps_near = parasitic_caps(self.block.circuit, self.placement, TECH)
        spread = self.placement.copy()
        free = [
            (c, r)
            for r in range(spread.canvas.rows)
            for c in range(spread.canvas.cols)
            if spread.is_free((c, r))
        ]
        spread.move_many({("mtail", 0): free[-1], ("mtail", 1): free[-2]})
        caps_far = parasitic_caps(self.block.circuit, spread, TECH)
        assert caps_far["tail"] > caps_near["tail"]


class TestAnnotate:
    def setup_method(self):
        self.block = five_transistor_ota()
        self.placement = banded_placement(self.block, "sequential")

    def test_adds_capacitors(self):
        annotated = annotate_parasitics(self.block.circuit, self.placement, TECH)
        added = [d for d in annotated if d.name.startswith("cpar_")]
        assert len(added) == len(signal_nets(self.block.circuit))
        assert all(isinstance(d, Capacitor) for d in added)

    def test_original_untouched(self):
        n_before = len(self.block.circuit)
        annotate_parasitics(self.block.circuit, self.placement, TECH)
        assert len(self.block.circuit) == n_before

    def test_annotated_circuit_still_simulates(self):
        annotated = annotate_parasitics(self.block.circuit, self.placement, TECH)
        result = solve_dc(annotated, TECH)
        # DC unchanged by capacitors.
        bare = solve_dc(self.block.circuit, TECH)
        assert result.voltage("outp") == pytest.approx(bare.voltage("outp"), abs=1e-9)
