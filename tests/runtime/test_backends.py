"""Unit tests for the execution backends and the RunSpec machinery."""

import pytest

from repro.netlist import five_transistor_ota
from repro.runtime import (
    ExecutionBackend,
    ProcessPoolBackend,
    RunOutcome,
    RunSpec,
    SerialBackend,
    build_block,
    execute_run,
    map_runs,
    outcomes_by_key,
    resolve_backend,
)


def _square(x):
    return x * x


def _raise(x):
    raise RuntimeError(f"worker boom on {x}")


class TestSerialBackend:
    def test_maps_in_order(self):
        assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []

    def test_propagates_exceptions(self):
        with pytest.raises(RuntimeError, match="boom"):
            SerialBackend().map(_raise, [1])

    def test_satisfies_protocol(self):
        assert isinstance(SerialBackend(), ExecutionBackend)


class TestProcessPoolBackend:
    def test_maps_in_order(self):
        backend = ProcessPoolBackend(jobs=2)
        assert backend.map(_square, list(range(10))) == [x * x for x in range(10)]

    def test_empty(self):
        assert ProcessPoolBackend(jobs=2).map(_square, []) == []

    def test_propagates_exceptions(self):
        with pytest.raises(RuntimeError, match="boom"):
            ProcessPoolBackend(jobs=2).map(_raise, [1, 2])

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            ProcessPoolBackend(jobs=0)

    def test_satisfies_protocol(self):
        assert isinstance(ProcessPoolBackend(jobs=2), ExecutionBackend)


class TestResolveBackend:
    def test_none_and_one_are_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(0), SerialBackend)
        assert isinstance(resolve_backend(1), SerialBackend)

    def test_many_jobs_is_process_pool(self):
        backend = resolve_backend(3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 3

    def test_backend_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            resolve_backend(-1)


class TestRunSpec:
    def test_unknown_placer_rejected(self):
        with pytest.raises(ValueError, match="placer"):
            RunSpec(key=1, builder="cm", placer="genetic")

    def test_unknown_builder_name_rejected(self):
        with pytest.raises(ValueError, match="builder"):
            RunSpec(key=1, builder="decoder")

    def test_bad_max_steps_rejected(self):
        with pytest.raises(ValueError, match="max_steps"):
            RunSpec(key=1, builder="cm", max_steps=0)

    def test_build_block_from_name_kwargs_callable_and_block(self):
        by_name = build_block(RunSpec(key=1, builder="ota5t"))
        assert by_name.name == five_transistor_ota().name
        sized = build_block(RunSpec(
            key=1, builder="cm", builder_kwargs=(("units_per_device", 2),)))
        assert sized.circuit.total_units() == 10
        by_callable = build_block(RunSpec(key=1, builder=five_transistor_ota))
        block = five_transistor_ota()
        assert build_block(RunSpec(key=1, builder=block)) is block
        assert by_callable.name == block.name


class TestSharedPolicySpecs:
    def test_sa_with_tables_rejected(self):
        with pytest.raises(ValueError, match="Q-learning"):
            RunSpec(key=1, builder="cm", placer="sa", return_tables=True)
        with pytest.raises(ValueError, match="Q-learning"):
            RunSpec(key=1, builder="cm", placer="sa", initial_tables={})

    def test_bad_warm_start_how_rejected(self):
        with pytest.raises(ValueError, match="warm_start_how"):
            RunSpec(key=1, builder="cm", warm_start_how="average")

    def test_return_tables_ships_snapshot(self):
        spec = RunSpec(key="t", builder="ota5t", placer="ql", seed=1,
                       max_steps=15, evaluate_best=False, return_tables=True)
        outcome = execute_run(spec)
        assert outcome.tables is not None
        assert ("top",) in outcome.tables
        assert sum(t.n_entries for t in outcome.tables.values()) > 0

    def test_tables_not_shipped_by_default(self):
        spec = RunSpec(key="t", builder="ota5t", placer="ql", seed=1,
                       max_steps=10, evaluate_best=False)
        assert execute_run(spec).tables is None

    def test_initial_tables_warm_start_worker(self):
        trained = execute_run(RunSpec(
            key="a", builder="ota5t", placer="ql", seed=1, max_steps=20,
            evaluate_best=False, return_tables=True))
        warm = execute_run(RunSpec(
            key="b", builder="ota5t", placer="ql", seed=2, max_steps=1,
            evaluate_best=False, return_tables=True,
            initial_tables=trained.tables))
        # Tables only grow, so every seeded (state, action) entry must
        # still exist in the warm worker's export (values may update).
        for key, table in trained.tables.items():
            got = warm.tables[key]
            seeded = {(s, a) for s, a, __ in table.items()}
            kept = {(s, a) for s, a, __ in got.items()}
            assert seeded <= kept

    def test_stop_at_target_stops_early(self):
        generous = execute_run(RunSpec(
            key="s", builder="ota5t", placer="ql", seed=1, max_steps=400,
            target=1e9, stop_at_target=True, evaluate_best=False))
        assert generous.result.reached_target
        assert generous.result.steps < 400


class TestExecuteRun:
    def test_produces_outcome_with_metrics_and_target(self):
        spec = RunSpec(key="r", builder="ota5t", placer="sa", seed=1,
                       max_steps=20, target_from_symmetric=True)
        outcome = execute_run(spec)
        assert isinstance(outcome, RunOutcome)
        assert outcome.key == "r"
        assert outcome.target > 0
        assert outcome.result.sims_used > 0
        assert outcome.metrics.primary_value == pytest.approx(
            outcome.metrics.primary_value)

    def test_evaluate_best_false_skips_metrics(self):
        spec = RunSpec(key="r", builder="ota5t", placer="sa", seed=1,
                       max_steps=10, evaluate_best=False)
        assert execute_run(spec).metrics is None


class TestMapRuns:
    def test_outcomes_align_with_specs(self):
        specs = [
            RunSpec(key=("sa", seed), builder="ota5t", placer="sa",
                    seed=seed, max_steps=10, evaluate_best=False)
            for seed in (5, 3, 1)
        ]
        outcomes = map_runs(specs)
        assert [o.key for o in outcomes] == [("sa", 5), ("sa", 3), ("sa", 1)]

    def test_outcomes_by_key_rejects_duplicates(self):
        outcome = RunOutcome(key="dup", result=None)
        with pytest.raises(ValueError, match="duplicate"):
            outcomes_by_key([outcome, outcome])
