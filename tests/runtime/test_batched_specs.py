"""Batched RunSpecs: validation, determinism, backend equivalence."""

import pytest

from repro.runtime import (
    ProcessPoolBackend,
    RunSpec,
    SerialBackend,
    map_runs,
)


def _spec(batch, seed=1):
    return RunSpec(key=("b", batch, seed), builder="ota5t", placer="ql",
                   seed=seed, max_steps=30, batch=batch)


class TestBatchedSpecs:
    def test_batch_validated(self):
        with pytest.raises(ValueError, match="batch"):
            RunSpec(key="x", builder="cm", batch=0)

    def test_batched_run_executes(self):
        outcome = map_runs([_spec(batch=4)])[0]
        result = outcome.result
        assert result.best_cost <= result.initial_cost
        # Batched turns price several candidates per step (cache misses
        # may be fewer than proposals, but more than one per turn total).
        assert result.sims_used > result.steps

    def test_batched_run_deterministic_across_backends(self):
        specs = [_spec(batch=4, seed=s) for s in (1, 2)]
        serial = map_runs(specs, SerialBackend())
        parallel = map_runs(specs, ProcessPoolBackend(jobs=2))
        for a, b in zip(serial, parallel):
            assert a.key == b.key
            assert a.result.best_cost == b.result.best_cost
            assert a.result.sims_used == b.result.sims_used
            assert a.result.history == b.result.history

    def test_batch_1_matches_default_spec(self):
        explicit = map_runs([RunSpec(key="k", builder="ota5t", seed=3,
                                     max_steps=25, batch=1)])[0]
        default = map_runs([RunSpec(key="k", builder="ota5t", seed=3,
                                    max_steps=25)])[0]
        assert explicit.result.best_cost == default.result.best_cost
        assert explicit.result.history == default.result.history
