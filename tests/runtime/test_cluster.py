"""Cluster backend mechanics and the distributed bit-identity claim.

Workers here are in-process threads running :func:`run_worker` — the
full TCP protocol (hello, leases, heartbeats, results, shutdown) over
loopback, without process-spawn latency.  Process-level worker death is
covered by ``tests/faults/test_cluster_recovery.py``.
"""

import json
import threading

import pytest

from repro.runtime import (
    ClusterBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    RunSpec,
    SerialBackend,
    WorkerTaskError,
    make_backend,
    map_runs,
    run_worker,
)
from repro.runtime.wire import outcome_to_wire


def _square(x):
    return x * x


def _raise(x):
    raise RuntimeError(f"worker boom on {x}")


def _thread_workers(backend, n):
    """Start ``n`` worker threads against ``backend``; returns
    (threads, exit_codes) — codes fill in as workers shut down."""
    host, port = backend.address
    codes = []

    def _serve(index):
        codes.append(run_worker(host, port, name=f"thread-{index}"))

    threads = [
        threading.Thread(target=_serve, args=(i,), daemon=True)
        for i in range(n)
    ]
    for thread in threads:
        thread.start()
    backend.wait_for_workers(n, timeout_s=10.0)
    return threads, codes


class TestMakeBackend:
    def test_serial_spellings(self):
        for spec in (None, 0, 1, "1", "serial"):
            assert isinstance(make_backend(spec), SerialBackend)

    def test_pool_spellings(self):
        for spec, jobs in ((3, 3), ("4", 4), ("pool:2", 2)):
            backend = make_backend(spec)
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.jobs == jobs
        assert isinstance(make_backend("pool"), ProcessPoolBackend)

    def test_backend_passes_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_cluster_spec_binds_coordinator(self):
        backend = make_backend("cluster:127.0.0.1:0")
        try:
            assert isinstance(backend, ClusterBackend)
            host, port = backend.address
            assert host == "127.0.0.1" and port > 0
            assert backend.spec == f"cluster:127.0.0.1:{port}"
        finally:
            backend.close()

    def test_bad_specs_rejected(self):
        for bad in ("warp", "pool:x", "cluster:nowhere", "-2"):
            with pytest.raises(ValueError):
                make_backend(bad)


class TestClusterMap:
    def test_maps_in_order_across_workers(self):
        with ClusterBackend() as backend:
            __, codes = _thread_workers(backend, 2)
            assert backend.worker_count == 2
            assert backend.jobs == 2
            result = backend.map(_square, list(range(12)))
            assert result == [x * x for x in range(12)]
        # close() sends shutdown frames; both workers exit cleanly.
        for __ in range(100):
            if len(codes) == 2:
                break
            threading.Event().wait(0.05)
        assert codes == [0, 0]

    def test_empty_map_needs_no_workers(self):
        with ClusterBackend() as backend:
            assert backend.map(_square, []) == []

    def test_worker_error_propagates(self):
        with ClusterBackend() as backend:
            _thread_workers(backend, 1)
            with pytest.raises(WorkerTaskError, match="boom"):
                backend.map(_raise, [1, 2])

    def test_satisfies_protocol(self):
        with ClusterBackend() as backend:
            assert isinstance(backend, ExecutionBackend)

    def test_workers_listing_names_slots(self):
        with ClusterBackend() as backend:
            _thread_workers(backend, 2)
            names = {w["name"] for w in backend.workers()}
            assert names == {"thread-0", "thread-1"}

    def test_no_workers_raises_with_join_hint(self):
        with ClusterBackend(start_timeout_s=0.3) as backend:
            with pytest.raises(RuntimeError, match="repro worker"):
                backend.map(_square, [1])


class TestClusterBitIdentity:
    """The acceptance rail: serial ≡ pool ≡ cluster, byte for byte."""

    def _specs(self):
        return [
            RunSpec(key=("QL", seed), builder="cm", placer="ql",
                    seed=seed, max_steps=20, target_from_symmetric=True)
            for seed in (1, 2, 3)
        ]

    @staticmethod
    def _canon(outcomes):
        return [
            json.dumps(outcome_to_wire(o), sort_keys=True)
            for o in outcomes
        ]

    def test_serial_pool_cluster_identical_payloads(self):
        serial = self._canon(map_runs(self._specs(), SerialBackend()))
        pooled = self._canon(
            map_runs(self._specs(), ProcessPoolBackend(jobs=2)))
        with ClusterBackend() as backend:
            _thread_workers(backend, 2)
            clustered = self._canon(map_runs(self._specs(), backend))
        assert serial == pooled
        assert serial == clustered

    def test_reuse_across_waves(self):
        # One backend, several map calls: leases/slots must reset.
        with ClusterBackend() as backend:
            _thread_workers(backend, 2)
            first = self._canon(map_runs(self._specs(), backend))
            second = self._canon(map_runs(self._specs(), backend))
            assert backend.map(_square, [4]) == [16]
        assert first == second

    def test_monte_carlo_statistics_identical(self):
        # The pickle task codec path: _McChunk work units ship whole
        # blocks/placements by value, not as registry-keyed specs.
        import numpy as np
        from repro.eval.montecarlo import monte_carlo
        from repro.layout import banded_placement
        from repro.netlist import current_mirror

        block = current_mirror()
        placement = banded_placement(block, "common_centroid")
        serial = monte_carlo(block, placement, n_runs=12, seed=5)
        with ClusterBackend() as backend:
            _thread_workers(backend, 2)
            clustered = monte_carlo(block, placement, n_runs=12, seed=5,
                                    backend=backend)
        assert np.array_equal(serial.samples, clustered.samples)
        assert serial.mean == clustered.mean
        assert serial.std == clustered.std
        assert serial.failures == clustered.failures
