"""Serial and parallel backends must be result-identical.

The runtime's whole contract: a run's outcome depends only on its spec,
and merging is keyed (seed, draw index), never completion order — so
``--jobs N`` changes wall-clock, not results.  Verified end-to-end here
for the Fig. 3 driver on the current mirror and for Monte-Carlo.
"""

import numpy as np
import pytest

from repro.eval import monte_carlo
from repro.experiments import ExperimentConfig, run_fig3
from repro.layout import banded_placement
from repro.netlist import current_mirror, five_transistor_ota
from repro.runtime import ProcessPoolBackend, SerialBackend

CM_FAST = ExperimentConfig(
    name="CM", builder=current_mirror, max_steps=40, seeds=(1, 2),
    ql_worse_tolerance=0.2,
)


class TestFig3Equivalence:
    @pytest.fixture(scope="class")
    def results(self):
        serial = run_fig3(CM_FAST, backend=SerialBackend())
        parallel = run_fig3(CM_FAST, backend=ProcessPoolBackend(jobs=2))
        return serial, parallel

    def test_rows_align(self, results):
        serial, parallel = results
        assert [r.algorithm for r in serial.rows] == \
            [r.algorithm for r in parallel.rows]
        assert serial.target == parallel.target

    def test_primaries_identical(self, results):
        serial, parallel = results
        for a, b in zip(serial.rows, parallel.rows):
            assert a.primary == b.primary, a.algorithm
            assert a.fom == b.fom, a.algorithm
            assert a.primary_runs == b.primary_runs, a.algorithm

    def test_sim_counts_identical(self, results):
        serial, parallel = results
        for a, b in zip(serial.rows, parallel.rows):
            assert a.sims_total == b.sims_total, a.algorithm
            assert a.sims_to_target == b.sims_to_target, a.algorithm
            assert a.tt_runs == b.tt_runs, a.algorithm

    def test_placements_identical(self, results):
        serial, parallel = results
        for a, b in zip(serial.rows, parallel.rows):
            assert a.placement.signature() == b.placement.signature()

    def test_jobs_config_matches_explicit_backend(self):
        # config.jobs is just another way to pick the backend.
        via_config = run_fig3(CM_FAST.with_jobs(2))
        serial = run_fig3(CM_FAST)
        assert [r.primary for r in via_config.rows] == \
            [r.primary for r in serial.rows]


class TestIslandCampaignEquivalence:
    """Serial and process-pool island campaigns must be bit-identical:
    the master policy is folded in spec order, never completion order."""

    @pytest.fixture(scope="class")
    def campaigns(self):
        from repro.train import run_campaign

        kwargs = dict(workers=3, rounds=2, steps_per_round=25, seed=4,
                      stop_at_target=False)
        serial = run_campaign("ota5t", backend=SerialBackend(), **kwargs)
        parallel = run_campaign(
            "ota5t", backend=ProcessPoolBackend(jobs=3), **kwargs)
        return serial, parallel

    def test_best_cost_and_history_identical(self, campaigns):
        serial, parallel = campaigns
        assert serial.best_cost == parallel.best_cost
        assert serial.history == parallel.history
        assert serial.total_sims == parallel.total_sims
        assert serial.sims_to_target == parallel.sims_to_target

    def test_master_tables_identical(self, campaigns):
        serial, parallel = campaigns
        assert list(serial.master_tables) == list(parallel.master_tables)
        for key in serial.master_tables:
            assert (list(serial.master_tables[key].items())
                    == list(parallel.master_tables[key].items())), key

    def test_best_placement_identical(self, campaigns):
        serial, parallel = campaigns
        assert (serial.best_placement.as_dict()
                == parallel.best_placement.as_dict())

    def test_round_reports_identical(self, campaigns):
        serial, parallel = campaigns
        for a, b in zip(serial.rounds, parallel.rounds):
            assert (a.index, a.best_cost, a.best_worker, a.sims,
                    a.master_entries) == \
                (b.index, b.best_cost, b.best_worker, b.sims,
                 b.master_entries)
            assert (a.merge.added, a.merge.updated, a.merge.kept) == \
                (b.merge.added, b.merge.updated, b.merge.kept)


class TestMonteCarloEquivalence:
    def test_statistics_identical(self):
        block = current_mirror()
        placement = banded_placement(block, "common_centroid")
        serial = monte_carlo(block, placement, n_runs=20, seed=5)
        parallel = monte_carlo(block, placement, n_runs=20, seed=5,
                               backend=ProcessPoolBackend(jobs=2))
        assert serial.metric == parallel.metric
        assert serial.failures == parallel.failures
        assert np.array_equal(serial.samples, parallel.samples)
        assert serial.mean == parallel.mean
        assert serial.std == parallel.std

    def test_draws_independent_of_chunking(self):
        # n_runs spanning several chunks vs a prefix of a longer run:
        # draw i depends only on (seed, i).
        block = five_transistor_ota()
        placement = banded_placement(block, "ysym")
        short = monte_carlo(block, placement, n_runs=9, seed=2)
        longer = monte_carlo(block, placement, n_runs=18, seed=2)
        assert short.failures == 0  # alignment below assumes no drops
        assert np.array_equal(short.samples, longer.samples[:9])
