"""Property tests for the cluster wire protocol.

The protocol is pure functions over bytes and dicts, so everything here
runs without a socket (plus a few socketpair cases for the stream side):
frames round-trip or raise :class:`FrameError` — they never silently
truncate — and a :class:`RunSpec` that crosses the wire is *equal* to
the one that was sent, off-schema fields included.  That identity is
the foundation of the serial ≡ pool ≡ cluster guarantee.
"""

import json
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.spec import RunSpec, execute_run
from repro.runtime.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    decode_key,
    encode_frame,
    encode_key,
    encode_task,
    execute_task,
    decode_result,
    outcome_from_wire,
    outcome_to_wire,
    recv_frame,
    send_frame,
    spec_from_wire,
    spec_to_wire,
)

# JSON-plain payloads (what frames carry).
json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(),
    lambda children: (
        st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
    ),
    max_leaves=12,
)

# Hashable spec-key trees (strings/numbers/None and tuples thereof).
key_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=8,
)

# Request-shaped RunSpecs, including every off-schema extra the wire
# form must carry verbatim (initial_tables is exercised separately —
# table snapshots do not define ``==``).
@st.composite
def specs(draw):
    placer = draw(st.sampled_from(["ql", "sa"]))
    return RunSpec(
        key=draw(key_values),
        builder=draw(
            st.sampled_from(["cm", "comp", "ota", "ota2s", "ota5t"])
        ),
        placer=placer,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        max_steps=draw(st.integers(min_value=1, max_value=10_000)),
        builder_kwargs=draw(st.sampled_from(
            [(), (("units_per_device", 2),), (("units_per_device", 3),)]
        )),
        target=draw(st.none() | st.floats(min_value=0.0, max_value=1e6,
                                          allow_nan=False)),
        target_from_symmetric=draw(st.booleans()),
        share_target_evaluator=draw(st.booleans()),
        batch=draw(st.integers(min_value=1, max_value=8)),
        epsilon_decay_frac=draw(st.floats(min_value=0.1, max_value=1.0,
                                          allow_nan=False)),
        variation_kind=draw(st.sampled_from([None, "mc"])),
        variation_with_lde=draw(st.booleans()),
        evaluate_best=draw(st.booleans()),
        stop_at_target=draw(st.booleans()),
        # SA has no tables to ship; the constructor enforces it.
        return_tables=draw(st.booleans()) if placer == "ql" else False,
    )


class TestFraming:
    @given(json_values)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_identity(self, payload):
        assert decode_frame(encode_frame(payload)) == payload

    @given(json_values, st.data())
    @settings(max_examples=60, deadline=None)
    def test_torn_frame_rejected(self, payload, data):
        frame = encode_frame(payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(FrameError, match="torn"):
            decode_frame(frame[:cut])

    @given(json_values)
    @settings(max_examples=30, deadline=None)
    def test_trailing_bytes_rejected(self, payload):
        with pytest.raises(FrameError, match="trailing"):
            decode_frame(encode_frame(payload) + b"x")

    def test_oversized_declaration_rejected(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(HEADER_BYTES, "big")
        with pytest.raises(FrameError, match="limit"):
            decode_frame(header)

    def test_oversized_body_rejected_on_encode(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.wire.MAX_FRAME_BYTES", 16)
        with pytest.raises(FrameError, match="limit"):
            encode_frame({"pad": "x" * 64})

    def test_non_json_body_rejected(self):
        body = b"\xff\xfe not json"
        frame = len(body).to_bytes(HEADER_BYTES, "big") + body
        with pytest.raises(FrameError, match="JSON"):
            decode_frame(frame)


class TestStreamFraming:
    def test_socket_round_trip_and_clean_eof(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(a, {"n": 1})
            send_frame(a, [1, 2, 3])
            a.close()
            assert recv_frame(b) == {"n": 1}
            assert recv_frame(b) == [1, 2, 3]
            assert recv_frame(b) is None  # clean EOF between frames

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        with a, b:
            frame = encode_frame({"big": "x" * 100})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(FrameError, match="mid-frame|between"):
                recv_frame(b)

    def test_oversized_declaration_raises_before_alloc(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(HEADER_BYTES, "big"))
            with pytest.raises(FrameError, match="limit"):
                recv_frame(b)


class TestKeyCodec:
    @given(key_values)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_identity(self, key):
        encoded = encode_key(key)
        json.dumps(encoded)  # must be JSON-plain
        assert decode_key(encoded) == key

    @given(key_values.filter(lambda k: isinstance(k, tuple)))
    @settings(max_examples=30, deadline=None)
    def test_tuples_stay_tuples(self, key):
        decoded = decode_key(json.loads(json.dumps(encode_key(key))))
        assert decoded == key
        assert isinstance(decoded, tuple)

    def test_unsupported_key_rejected(self):
        with pytest.raises(FrameError, match="no wire form"):
            encode_key(object())


class TestSpecCodec:
    @given(specs())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_identity(self, spec):
        payload = spec_to_wire(spec)
        json.dumps(payload)  # must survive an actual JSON hop
        restored = spec_from_wire(json.loads(json.dumps(payload)))
        assert restored == spec

    def test_non_registry_builder_refused(self):
        from repro.netlist import five_transistor_ota
        spec = RunSpec(key=1, builder=five_transistor_ota)
        with pytest.raises(FrameError, match="pickle codec"):
            spec_to_wire(spec)

    def test_initial_tables_round_trip(self):
        trained = execute_run(RunSpec(
            key="t", builder="cm", placer="ql", seed=1, max_steps=15,
            evaluate_best=False, return_tables=True))
        spec = RunSpec(key="w", builder="cm", placer="ql", seed=2,
                       max_steps=5, evaluate_best=False,
                       initial_tables=trained.tables)
        restored = spec_from_wire(
            json.loads(json.dumps(spec_to_wire(spec))))
        from repro.core.persistence import tables_to_payload
        assert (tables_to_payload(restored.initial_tables)
                == tables_to_payload(trained.tables))


class TestOutcomeAndTaskCodecs:
    def test_outcome_bit_identical_through_json(self):
        spec = RunSpec(key=("QL", 3), builder="cm", placer="ql", seed=7,
                       max_steps=25, target_from_symmetric=True)
        outcome = execute_run(spec)
        payload = json.loads(json.dumps(outcome_to_wire(outcome)))
        restored = outcome_from_wire(payload)
        assert restored.key == outcome.key
        assert restored.result.best_cost == outcome.result.best_cost
        assert restored.result.history == outcome.result.history
        assert restored.target == outcome.target
        # The decisive check: re-encoding is byte-identical.
        assert (json.dumps(outcome_to_wire(restored), sort_keys=True)
                == json.dumps(outcome_to_wire(outcome), sort_keys=True))

    def test_spec_task_executes_identically(self):
        spec = RunSpec(key=("QL", 1), builder="cm", placer="ql", seed=3,
                       max_steps=20, target_from_symmetric=True)
        local = execute_run(spec)
        task = encode_task(execute_run, spec)
        assert task["codec"] == "spec"
        result = execute_task(json.loads(json.dumps(task)))
        assert result["status"] == "ok"
        remote = decode_result(result)
        assert (json.dumps(outcome_to_wire(remote), sort_keys=True)
                == json.dumps(outcome_to_wire(local), sort_keys=True))

    def test_pickle_fallback_for_plain_functions(self):
        task = encode_task(_double, 21)
        assert task["codec"] == "pickle"
        result = execute_task(json.loads(json.dumps(task)))
        assert decode_result(result) == 42

    def test_task_error_settles_not_raises(self):
        result = execute_task(encode_task(_boom, 1))
        assert result["status"] == "error"
        assert result["error_type"] == "RuntimeError"
        assert "boom" in result["error"]

    def test_lambda_refused(self):
        with pytest.raises(FrameError, match="module-level"):
            encode_task(lambda x: x, 1)


def _double(x):
    return 2 * x


def _boom(x):
    raise RuntimeError(f"boom on {x}")
