"""Result-cache bounds: LRU eviction, TTL expiry, and both surviving a
journal restart — the cache index is rebuilt by replay through the same
store/lookup path live serving uses, so caps and ages hold across
``kill -9`` exactly as they did before it."""

import time
from dataclasses import dataclass

import pytest

from repro.service.journal import JobJournal
from repro.service.jobs import JobManager


@dataclass(frozen=True)
class FakeRequest:
    seed: int

    def to_json_dict(self):
        return {"seed": self.seed}


@dataclass
class FakeResult:
    value: int

    def to_json_dict(self):
        return {"value": self.value}


def _manager(tmp_path=None, **kwargs):
    executed = []

    def runner(request):
        executed.append(request.seed)
        return FakeResult(request.seed)

    journal = JobJournal(tmp_path) if tmp_path is not None else None
    manager = JobManager(runner, workers=1, result_cache=True,
                         journal=journal, **kwargs)
    return manager, executed


def _run(manager, seed):
    job = manager.submit(FakeRequest(seed))
    manager.result(job, timeout=30)
    return job


class TestLruEviction:
    def test_capacity_evicts_least_recently_served(self):
        manager, executed = _manager(result_cache_max_entries=2)
        try:
            for seed in (1, 2, 3):
                _run(manager, seed)
            assert manager.stats["result_cache_evicted"] == 1
            # Seed 1 was evicted: a repeat re-runs.  Seeds 2 and 3 hit.
            _run(manager, 2)
            _run(manager, 3)
            assert manager.stats["result_cache_hits"] == 2
            _run(manager, 1)
            assert executed == [1, 2, 3, 1]
        finally:
            manager.shutdown()

    def test_cache_hit_refreshes_recency(self):
        manager, executed = _manager(result_cache_max_entries=2)
        try:
            _run(manager, 1)
            _run(manager, 2)
            _run(manager, 1)   # hit: seed 1 becomes most recent
            _run(manager, 3)   # evicts seed 2, not seed 1
            _run(manager, 1)
            assert manager.stats["result_cache_hits"] == 2
            _run(manager, 2)   # evicted: re-runs
            assert executed == [1, 2, 3, 2]
        finally:
            manager.shutdown()

    def test_metrics_surface_cache_bounds(self):
        manager, __ = _manager(result_cache_max_entries=5,
                               result_cache_ttl_s=60.0)
        try:
            _run(manager, 1)
            payload = manager.metrics()["result_cache"]
            assert payload == {"entries": 1, "max_entries": 5, "ttl_s": 60.0}
        finally:
            manager.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError, match="result_cache_max_entries"):
            JobManager(lambda r: r, result_cache_max_entries=0)
        with pytest.raises(ValueError, match="result_cache_ttl_s"):
            JobManager(lambda r: r, result_cache_ttl_s=0.0)


class TestTtlExpiry:
    def test_stale_entry_expires_and_reruns(self):
        manager, executed = _manager(result_cache_ttl_s=0.15)
        try:
            _run(manager, 7)
            _run(manager, 7)  # immediate repeat: served from cache
            assert manager.stats["result_cache_hits"] == 1
            time.sleep(0.2)
            _run(manager, 7)  # aged out: runs again
            assert manager.stats["result_cache_expired"] == 1
            assert executed == [7, 7]
        finally:
            manager.shutdown()


def _recover(manager):
    manager.recover(
        lambda kind, data: FakeRequest(seed=data["seed"]),
        lambda data: FakeResult(value=data["value"]),
    )


class TestRestartReplay:
    def test_eviction_cap_holds_across_restart(self, tmp_path):
        first, __ = _manager(tmp_path, result_cache_max_entries=2)
        for seed in (1, 2, 3):
            _run(first, seed)
        first.shutdown()

        second, executed = _manager(tmp_path, result_cache_max_entries=2)
        _recover(second)
        try:
            # Replay re-seeds the cache in journal order through the same
            # LRU store: the cap holds, the oldest entry is gone.
            assert second.metrics()["result_cache"]["entries"] == 2
            _run(second, 3)
            _run(second, 2)
            assert second.stats["result_cache_hits"] == 2
            _run(second, 1)
            assert executed == [1]
        finally:
            second.shutdown()

    def test_journaled_ttl_expires_across_restart(self, tmp_path):
        first, __ = _manager(tmp_path, result_cache_ttl_s=0.15)
        _run(first, 5)
        entries = JobJournal(tmp_path).entries()
        first.shutdown()
        done = [e for e in entries if e["event"] == "done"]
        assert done and done[0]["ttl_s"] == 0.15

        time.sleep(0.2)
        second, executed = _manager(tmp_path, result_cache_ttl_s=0.15)
        _recover(second)
        try:
            # The done entry's journaled timestamp+TTL already lapsed, so
            # the replayed result never re-enters the cache.
            assert second.metrics()["result_cache"]["entries"] == 0
            _run(second, 5)
            assert executed == [5]
        finally:
            second.shutdown()

    def test_fresh_entries_survive_restart_with_ttl(self, tmp_path):
        first, __ = _manager(tmp_path, result_cache_ttl_s=60.0)
        _run(first, 9)
        first.shutdown()

        second, executed = _manager(tmp_path, result_cache_ttl_s=60.0)
        _recover(second)
        try:
            _run(second, 9)
            assert second.stats["result_cache_hits"] == 1
            assert executed == []
        finally:
            second.shutdown()
