"""The bundled corpus: headers, bulk checking, registration, end-to-end.

The acceptance claim lives here: every bundled deck flows through
parse → hierarchy → extraction → validation with zero errors, and places
end-to-end through the service, the CLI and HTTP ``/place``.
"""

import json
import pickle
import urllib.request

import pytest

from repro.service import PlacementRequest
from repro.service.corpus import (
    CorpusBuilder,
    CorpusFormatError,
    build_entry,
    check_corpus,
    corpus_registry,
    list_corpus,
    load_entry,
)
from repro.service.http import make_server, server_thread
from repro.service.registry import default_registry
from repro.service.service import PlacementService

ENTRIES = list_corpus()
NAMES = [e.name for e in ENTRIES]


class TestHeaders:
    def test_bundled_corpus_has_at_least_eight_decks(self):
        assert len(ENTRIES) >= 8

    def test_entries_are_sorted_and_typed(self):
        assert NAMES == sorted(NAMES)
        assert {e.kind for e in ENTRIES} <= {"cm", "comp", "ota"}

    def test_every_deck_declares_labels_and_canvas(self):
        for e in ENTRIES:
            assert e.labels, e.name
            assert e.canvas is not None, e.name
            assert e.input_nets and e.output_nets, e.name

    def test_header_fields_parse(self, tmp_path):
        deck = tmp_path / "toy.sp"
        deck.write_text(
            "* toy\n"
            "*# kind: ota\n"
            "*# inputs: vip vin\n"
            "*# outputs: outp\n"
            "*# canvas: 4x5\n"
            '*# params: {"vdd": 1.1}\n'
            "*# groups: pair:m1,m2 tail:mt\n"
            "mm1 a vip t gnd nmos40 w=1e-06 l=2e-07 m=1\n"
        )
        entry = load_entry(deck)
        assert entry.kind == "ota"
        assert entry.canvas == (4, 5)
        assert entry.params == {"vdd": 1.1}
        assert entry.labels == (("pair", ("m1", "m2")), ("tail", ("mt",)))

    @pytest.mark.parametrize("line", [
        "*# canvas: 4by5",
        "*# params: {not json}",
        "*# groups: nocolon",
        "*# frobnicate: 3",
        "*# keyonly",
    ])
    def test_bad_header_lines_are_rejected(self, tmp_path, line):
        deck = tmp_path / "bad.sp"
        deck.write_text(f"* bad\n{line}\nmm1 a b c gnd nmos40 w=1e-06 l=1e-07 m=1\n")
        with pytest.raises(CorpusFormatError):
            load_entry(deck)


class TestCheck:
    def test_every_bundled_deck_is_clean(self):
        checks = check_corpus()
        assert checks, "bundled corpus is missing"
        for chk in checks:
            assert chk.ok, f"{chk.entry.name}: {chk.report.summary()} " \
                           f"{chk.build_error or ''}"
            assert chk.report.n_groups > 0

    def test_hand_labels_name_real_devices(self):
        for entry in ENTRIES:
            block = build_entry(entry)
            placeable = {d.name for d in block.circuit.placeable()}
            labelled = {d for _, devs in entry.labels for d in devs}
            assert labelled == placeable, entry.name


class TestRegistry:
    def test_corpus_registry_extends_but_never_mutates_default(self):
        registry = corpus_registry()
        assert set(default_registry().keys()) == {
            "cm", "comp", "ota", "ota5t", "ota2s"}
        assert set(NAMES) <= set(registry.keys())
        assert set(default_registry().keys()) <= set(registry.keys())

    def test_builders_are_picklable(self):
        builder = corpus_registry().builder(NAMES[0])
        clone = pickle.loads(pickle.dumps(builder))
        assert clone().name == NAMES[0]

    def test_builder_reports_its_name(self):
        assert CorpusBuilder("mirror_wide").__name__ == "mirror_wide"


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def service(self):
        service = PlacementService(registry=corpus_registry())
        yield service
        service.close()

    @pytest.mark.parametrize("name", NAMES)
    def test_every_deck_places_through_the_service(self, service, name):
        result = service.place(PlacementRequest(circuit=name, steps=6, seed=1))
        placement = result.placement_object()
        block = build_entry(next(e for e in ENTRIES if e.name == name))
        assert len(placement._cells) == block.circuit.total_units()
        assert result.sims_used > 0

    def test_http_place_accepts_corpus_circuits(self, tmp_path):
        service = PlacementService(registry=corpus_registry(),
                                   policies=tmp_path / "policies")
        server = make_server(service)
        server_thread(server)
        try:
            with urllib.request.urlopen(server.url + "/circuits") as resp:
                circuits = json.loads(resp.read())["circuits"]
            assert set(NAMES) <= set(circuits)
            request = urllib.request.Request(
                server.url + "/place?wait=1",
                data=json.dumps({"circuit": "mirror_cascode", "steps": 6,
                                 "seed": 1}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as resp:
                payload = json.loads(resp.read())
            assert payload["result"]["placement"]
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestCli:
    def test_corpus_check_exits_clean(self, capsys):
        from repro.cli import main

        assert main(["corpus", "check"]) == 0
        out = capsys.readouterr().out
        assert "deck(s) clean" in out

    def test_corpus_list_shows_every_deck(self, capsys):
        from repro.cli import main

        assert main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        for name in NAMES:
            assert name in out

    def test_corpus_import_registers_everything(self, capsys):
        from repro.cli import main

        assert main(["corpus", "import"]) == 0
        assert f"registered {len(NAMES)} corpus circuit(s)" \
            in capsys.readouterr().out

    def test_cli_place_accepts_a_corpus_circuit(self, capsys):
        from repro.cli import main

        assert main(["place", "--circuit", "mirror_wide", "--steps", "5"]) == 0
        assert "target" in capsys.readouterr().out
