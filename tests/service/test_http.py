"""HTTP layer: routes, error contract, and the serving acceptance claim —
a POST to ``/place`` reproduces the equivalent ``repro place`` run
bit-for-bit."""

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.service import PlacementRequest
from repro.service.http import make_server, server_thread
from repro.service.service import PlacementService

QUICK = dict(circuit="ota5t", steps=30, seed=1)


@pytest.fixture()
def served(tmp_path):
    service = PlacementService(policies=tmp_path / "policies")
    server = make_server(service)
    server_thread(server)
    yield server.url, service
    server.shutdown()
    server.server_close()
    service.close()


def _get(url):
    with urllib.request.urlopen(url) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


def _post_json(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as resp:
        return resp.status, json.loads(resp.read())


class TestRoutes:
    def test_healthz(self, served):
        url, __ = served
        status, ctype, body = _get(url + "/healthz")
        assert status == 200 and ctype == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert "cm" in payload["circuits"]
        assert payload["jobs"]["done"] == 0

    def test_circuits_and_policies(self, served):
        url, __ = served
        __, __, body = _get(url + "/circuits")
        assert json.loads(body)["circuits"] == [
            "cm", "comp", "ota", "ota5t", "ota2s"]
        __, __, body = _get(url + "/policies")
        assert json.loads(body)["policies"] == []

    def test_async_place_job_lifecycle_and_svg(self, served):
        url, service = served
        status, payload = _post_json(
            url + "/place", PlacementRequest(**QUICK).to_json_dict())
        assert status == 202
        job = payload["job"]
        assert payload["status_url"] == f"/jobs/{job}"
        deadline = time.time() + 300
        while time.time() < deadline:
            __, __, body = _get(url + f"/jobs/{job}")
            record = json.loads(body)
            if record["state"] in ("done", "failed"):
                break
            time.sleep(0.1)
        assert record["state"] == "done"
        assert record["result"]["best_cost"] > 0
        status, ctype, svg = _get(url + f"/jobs/{job}/svg")
        assert status == 200 and ctype == "image/svg+xml"
        assert svg.decode().startswith("<svg")

    def test_svg_of_unfinished_job_is_409(self, served):
        url, service = served
        # A job that fails fast (unknown warm policy) is terminal but not
        # done — its SVG must be refused, not crash the handler.
        status, payload = _post_json(
            url + "/place",
            PlacementRequest(**QUICK, warm_policy="missing").to_json_dict())
        job = payload["job"]
        deadline = time.time() + 60
        while (service.jobs.status(job).state not in ("done", "failed")
               and time.time() < deadline):
            time.sleep(0.05)
        assert service.jobs.status(job).state == "failed"
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(url + f"/jobs/{job}/svg")
        assert err.value.code == 409
        assert "not done" in json.loads(err.value.read())["error"]

    def test_error_contract(self, served):
        url, __ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(url + "/jobs/job-999")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(url + "/nope")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_json(url + "/place", {"circuit": "cm", "stepz": 3})
        assert err.value.code == 400
        assert "stepz" in json.loads(err.value.read())["error"]
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_json(url + "/place", {"circuit": "cm", "steps": 0})
        assert err.value.code == 400
        # Unknown circuit keys are rejected at submit time (400), not
        # accepted as jobs doomed to fail.
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_json(url + "/place", {"circuit": "dac", "steps": 5})
        assert err.value.code == 400
        assert "unknown circuit" in json.loads(err.value.read())["error"]


class TestServingBitIdentity:
    """Acceptance: CLI, facade and HTTP produce bit-identical results."""

    def test_served_place_equals_direct_place(self, served):
        url, service = served
        request = PlacementRequest(**QUICK)
        direct = service.place(request).to_json_dict()
        status, payload = _post_json(
            url + "/place?wait=1", request.to_json_dict())
        assert status == 200
        assert payload["result"] == direct

    def test_served_place_reproduces_repro_place_cli(self, served, capsys):
        """POST /place and ``repro place`` with the same parameters print
        and serve the same numbers."""
        from repro.cli import main

        url, __ = served
        assert main(["place", "--circuit", "ota5t", "--steps", "30",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        match = re.search(
            r"target \(best symmetric\): (\d+\.\d+)\s+reached after "
            r"(\S+) simulations \((\d+) total\)", out)
        assert match, out

        __, payload = _post_json(
            url + "/place?wait=1",
            PlacementRequest(circuit="ota5t", steps=30,
                             seed=1).to_json_dict())
        result = payload["result"]
        assert f"{result['target']:.4f}" == match.group(1)
        assert str(result["sims_to_target"]) == match.group(2)
        assert str(result["sims_used"]) == match.group(3)
        # And the metrics line is the served metrics, rendered.
        from repro.service import metrics_from_dict

        assert metrics_from_dict(result["metrics"]).summary() in out


class TestInlineSpiceServing:
    def test_spice_job_places_and_renders_svg(self, served):
        """The advertised inline-SPICE path works end to end, SVG
        included (the deck comes from the job's request, not the
        result payload)."""
        url, service = served
        deck = (
            ".model nmos40 nmos (level=1 vto=0.45 kp=0.0004 lambda=0.2 "
            "gamma=0.35 phi=0.8)\n"
            "mm1 bias bias gnd gnd nmos40 w=1e-06 l=5e-07 m=2\n"
            "mm2 out bias gnd gnd nmos40 w=1e-06 l=5e-07 m=2\n"
            "vvvdd vdd gnd dc 1.1\n"
            "iiref vdd bias dc 2e-05\n"
            "vvprobe out gnd dc 0.55\n"
        )
        status, payload = _post_json(url + "/place", {
            "spice": deck, "spice_kind": "cm", "spice_name": "mini",
            "spice_inputs": ["bias"], "spice_outputs": ["out"],
            "spice_params": {"iref": 2e-5, "vdd": 1.1,
                             "probe_sources": ["vprobe"]},
            "steps": 10, "target": 1e6,
        })
        assert status == 202
        job = payload["job"]
        deadline = time.time() + 300
        while time.time() < deadline:
            __, __, body = _get(url + f"/jobs/{job}")
            record = json.loads(body)
            if record["state"] in ("done", "failed"):
                break
            time.sleep(0.1)
        assert record["state"] == "done", record.get("error")
        assert record["result"]["circuit"] == "spice:mini"
        status, ctype, svg = _get(url + f"/jobs/{job}/svg")
        assert status == 200 and ctype == "image/svg+xml"
        assert svg.decode().startswith("<svg")
