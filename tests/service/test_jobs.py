"""JobManager failure surfaces: the cancel/running race, shutdown
semantics, result timeouts, and journal replay of failed jobs."""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.service.journal import JobJournal
from repro.service.jobs import JobManager


@dataclass(frozen=True)
class FakeRequest:
    seed: int

    def to_json_dict(self):
        return {"seed": self.seed}


@dataclass
class FakeResult:
    value: int

    def to_json_dict(self):
        return {"value": self.value}


class TestCancelRace:
    def test_cancel_vs_start_settles_deterministically(self):
        # Regression for the unlocked-future.cancel() race: hammer
        # cancel() right as each job transitions queued -> running.  The
        # invariant: a job either ran to completion (cancel returned
        # False / state done) or never executed at all (cancel returned
        # True / state cancelled) — no record/future disagreement, no
        # half-executed work.
        executed = []
        lock = threading.Lock()

        def runner(request):
            with lock:
                executed.append(request.seed)
            return FakeResult(request.seed)

        manager = JobManager(runner, workers=1)
        outcomes = []
        for seed in range(40):
            job = manager.submit(FakeRequest(seed))
            if seed % 3:
                time.sleep(0.0005)  # vary who wins the race
            cancelled = manager.cancel(job)
            outcomes.append((seed, job, cancelled))
        manager.shutdown(wait=True)

        ran = set(executed)
        for seed, job, cancelled in outcomes:
            record = manager.status(job)
            if cancelled:
                assert record.state == "cancelled"
                assert seed not in ran, f"cancelled {job} still executed"
                with pytest.raises(RuntimeError, match="cancelled"):
                    manager.result(job)
            else:
                assert record.state == "done"
                assert seed in ran
                assert manager.result(job).value == seed

    def test_cancel_running_job_returns_false(self):
        release = threading.Event()
        entered = threading.Event()

        def runner(request):
            entered.set()
            release.wait(30)
            return FakeResult(request.seed)

        manager = JobManager(runner, workers=1)
        job = manager.submit(FakeRequest(1))
        assert entered.wait(30)
        assert manager.cancel(job) is False
        assert manager.status(job).state == "running"
        release.set()
        assert manager.result(job, timeout=30).value == 1
        manager.shutdown()

    def test_cancel_twice_is_idempotent(self):
        release = threading.Event()

        def runner(request):
            release.wait(30)
            return FakeResult(request.seed)

        manager = JobManager(runner, workers=1)
        manager.submit(FakeRequest(1))  # occupies the worker
        queued = manager.submit(FakeRequest(2))
        assert manager.cancel(queued) is True
        assert manager.cancel(queued) is True  # already cancelled
        release.set()
        manager.shutdown()


class TestShutdownSurfaces:
    def test_submit_after_shutdown_raises_cleanly(self):
        manager = JobManager(lambda request: FakeResult(1))
        manager.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            manager.submit(FakeRequest(1))

    def test_pre_shutdown_results_remain_readable(self):
        manager = JobManager(lambda request: FakeResult(request.seed))
        job = manager.submit(FakeRequest(9))
        assert manager.result(job, timeout=30).value == 9
        manager.shutdown()
        assert manager.result(job).value == 9
        assert manager.counts()["done"] == 1


class TestResultTimeout:
    def test_result_timeout_expires_on_hung_job(self):
        release = threading.Event()

        def hung_runner(request):
            release.wait(30)
            return FakeResult(request.seed)

        manager = JobManager(hung_runner, workers=1)
        job = manager.submit(FakeRequest(1))
        start = time.monotonic()
        with pytest.raises(TimeoutError, match="still running"):
            manager.result(job, timeout=0.2)
        assert time.monotonic() - start < 5
        # The job itself is unharmed: release it and read the result.
        release.set()
        assert manager.result(job, timeout=30).value == 1
        manager.shutdown()

    def test_unknown_job_everywhere(self):
        manager = JobManager(lambda request: FakeResult(1))
        with pytest.raises(KeyError, match="nope"):
            manager.status("nope")
        with pytest.raises(KeyError, match="nope"):
            manager.result("nope")
        with pytest.raises(KeyError, match="nope"):
            manager.cancel("nope")
        manager.shutdown()


class TestFailedJobReplay:
    def test_journal_replay_of_failed_job_returns_stored_error(self, tmp_path):
        def failing_runner(request):
            raise ZeroDivisionError("metrics blew up")

        first = JobManager(failing_runner, workers=1,
                           journal=JobJournal(tmp_path))
        job = first.submit(FakeRequest(1))
        with pytest.raises(RuntimeError, match="metrics blew up"):
            first.result(job, timeout=30)
        first.shutdown()

        second = JobManager(failing_runner, workers=1,
                            journal=JobJournal(tmp_path))
        second.recover(
            lambda kind, data: FakeRequest(seed=data["seed"]),
            lambda data: FakeResult(value=data["value"]),
        )
        record = second.status(job)
        assert record.state == "failed" and record.recovered
        assert "ZeroDivisionError" in record.error
        with pytest.raises(RuntimeError, match="metrics blew up"):
            second.result(job)
        second.shutdown()
