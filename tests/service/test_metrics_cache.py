"""The ``/metrics`` scrape target and the persistent result cache.

The cache claim: with ``result_cache=True`` a repeated identical
request gets a *new* job id that is born ``done`` with the first job's
result — ``"cached": true``, zero execution — and with a journal the
cache index survives ``kill -9`` (recovery re-seeds it from the
replayed terminal jobs).  Sound because execution is deterministic:
the re-run the cache skips would have produced the same bytes.
"""

import json
import urllib.request

import pytest

from repro.service.requests import PlacementRequest
from repro.service.http import make_server, server_thread
from repro.service.service import PlacementService

QUICK = dict(circuit="cm", steps=25, seed=4)


def _service(tmp_path, **kwargs):
    return PlacementService(policies=tmp_path / "policies", **kwargs)


class TestResultCache:
    def test_repeat_request_served_from_cache(self, tmp_path):
        service = _service(tmp_path, result_cache=True)
        try:
            request = PlacementRequest(**QUICK)
            first = service.submit(request)
            result_one = service.result(first)
            second = service.submit(request)
            assert second != first
            status = service.status(second).status_dict()
            assert status["state"] == "done"
            assert status["cached"] is True
            assert status["started_at"] is None  # never executed
            assert service.result(second) is result_one
            assert service.jobs.stats["result_cache_hits"] == 1
            # The original job is not retroactively marked cached.
            assert "cached" not in service.status(first).status_dict()
        finally:
            service.close()

    def test_different_request_misses(self, tmp_path):
        service = _service(tmp_path, result_cache=True)
        try:
            service.result(service.submit(PlacementRequest(**QUICK)))
            other = dict(QUICK, seed=5)
            job = service.submit(PlacementRequest(**other))
            service.result(job)
            assert "cached" not in service.status(job).status_dict()
            assert service.jobs.stats["result_cache_hits"] == 0
        finally:
            service.close()

    def test_cache_off_by_default(self, tmp_path):
        service = _service(tmp_path)
        try:
            request = PlacementRequest(**QUICK)
            service.result(service.submit(request))
            job = service.submit(request)
            service.result(job)
            assert "cached" not in service.status(job).status_dict()
        finally:
            service.close()

    def test_cache_survives_restart_via_journal(self, tmp_path):
        request = PlacementRequest(**QUICK)
        service = _service(
            tmp_path, result_cache=True, journal_dir=tmp_path / "jobs")
        first_payload = service.result(
            service.submit(request)).to_json_dict()
        service.close()

        revived = _service(
            tmp_path, result_cache=True, journal_dir=tmp_path / "jobs")
        try:
            job = revived.submit(request)
            status = revived.status(job).status_dict()
            assert status["cached"] is True
            assert status["result"] == first_payload
            assert revived.jobs.stats["result_cache_hits"] == 1
        finally:
            revived.close()

    def test_cached_jobs_replay_as_cached(self, tmp_path):
        request = PlacementRequest(**QUICK)
        service = _service(
            tmp_path, result_cache=True, journal_dir=tmp_path / "jobs")
        service.result(service.submit(request))
        cached_id = service.submit(request)
        assert service.status(cached_id).cached
        service.close()

        revived = _service(
            tmp_path, result_cache=True, journal_dir=tmp_path / "jobs")
        try:
            record = revived.status(cached_id)
            assert record.state == "done" and record.cached
            assert record.recovered
        finally:
            revived.close()


class TestMetrics:
    def test_payload_shape_and_counts(self, tmp_path):
        service = _service(tmp_path, result_cache=True)
        try:
            request = PlacementRequest(**QUICK)
            service.result(service.submit(request))
            service.result(service.submit(request))  # cache hit
            payload = service.metrics()
            assert payload["jobs"]["done"] == 2
            assert payload["queue_depth"] == 0
            assert payload["jobs_per_s"] > 0
            # One job executed, one was cached: percentile pool is the
            # executed job only.
            assert payload["latency_s"]["p50"] > 0
            assert payload["latency_s"]["p99"] >= payload["latency_s"]["p50"]
            assert payload["sims_per_job"] > 0
            assert payload["stats"]["result_cache_hits"] == 1
            assert payload["backend"]["kind"] == "SerialBackend"
            assert payload["backend"]["workers"] == 1
        finally:
            service.close()

    def test_empty_manager_has_null_percentiles(self, tmp_path):
        service = _service(tmp_path)
        try:
            payload = service.metrics()
            assert payload["jobs"]["done"] == 0
            assert payload["latency_s"]["p50"] is None
            assert payload["sims_per_job"] is None
        finally:
            service.close()


class TestMetricsEndpoint:
    @pytest.fixture()
    def served(self, tmp_path):
        service = _service(tmp_path, result_cache=True)
        server = make_server(service)
        server_thread(server)
        yield server.url, service
        server.shutdown()
        server.server_close()
        service.close()

    def test_prometheus_text_default(self, served):
        url, service = served
        service.result(service.submit(PlacementRequest(**QUICK)))
        with urllib.request.urlopen(url + "/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode()
        assert 'repro_jobs{state="done"} 1' in body
        assert "# TYPE repro_jobs gauge" in body
        assert 'repro_backend_workers{kind="SerialBackend"} 1' in body
        assert 'repro_job_latency_seconds{quantile="0.5"}' in body
        assert ('repro_serving_events_total'
                '{event="result_cache_hits"} 0') in body

    def test_json_format_query(self, served):
        url, service = served
        request = PlacementRequest(**QUICK)
        service.result(service.submit(request))
        service.submit(request)  # cache hit
        with urllib.request.urlopen(url + "/metrics?format=json") as resp:
            assert resp.headers["Content-Type"] == "application/json"
            payload = json.loads(resp.read())
        assert payload["jobs"]["done"] == 2
        assert payload["stats"]["result_cache_hits"] == 1
        assert payload["backend"]["kind"] == "SerialBackend"

    def test_cached_flag_served_over_http(self, served):
        url, service = served
        request = PlacementRequest(**QUICK)
        service.result(service.submit(request))
        job = service.submit(request)
        with urllib.request.urlopen(f"{url}/jobs/{job}") as resp:
            status = json.loads(resp.read())
        assert status["state"] == "done"
        assert status["cached"] is True
