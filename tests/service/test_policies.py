"""Policy store: naming, versioning, prune-on-save, persistence format."""

import pytest

from repro.core.persistence import load_tables_snapshot
from repro.core.qlearning import QTable
from repro.service import PolicyStore


def _tables(entries):
    """{address: [(state, action, value, visits), ...]} → snapshot."""
    out = {}
    for address, rows in entries.items():
        table = QTable()
        for state, action, value, visits in rows:
            table.set(state, action, value, visits=visits)
        out[address] = table
    return out


class TestPolicyStore:
    def test_save_load_round_trip(self, tmp_path):
        store = PolicyStore(tmp_path)
        tables = _tables({("top",): [("s", "a", 1.5, 3)]})
        ref = store.save("base", tables, circuit="cm")
        assert ref == "base@1"
        loaded, meta = store.load("base")
        assert loaded[("top",)].get("s", "a") == 1.5
        assert loaded[("top",)].visits("s", "a") == 3
        assert meta["circuit"] == "cm"
        assert meta["name"] == "base"

    def test_versions_increment_and_pin(self, tmp_path):
        store = PolicyStore(tmp_path)
        t1 = _tables({("top",): [("s", "a", 1.0, 1)]})
        t2 = _tables({("top",): [("s", "a", 2.0, 1)]})
        assert store.save("base", t1) == "base@1"
        assert store.save("base", t2) == "base@2"
        latest, __ = store.load("base")
        pinned, __ = store.load("base@1")
        assert latest[("top",)].get("s", "a") == 2.0
        assert pinned[("top",)].get("s", "a") == 1.0

    def test_prune_runs_before_snapshot_without_mutating_caller(self, tmp_path):
        store = PolicyStore(tmp_path)
        tables = _tables({("top",): [
            ("keep", "a", 5.0, 10),
            ("stale", "a", 5.0, 1),     # too few visits
            ("tiny", "a", 1e-9, 10),    # |Q| negligible
        ]})
        ref = store.save("compact", tables,
                         prune_min_visits=2, prune_min_abs_q=1e-6)
        loaded, meta = store.load(ref)
        assert [s for s, __, __ in loaded[("top",)].items()] == ["keep"]
        assert meta["pruned_dropped"] == 2
        assert meta["pruned_kept"] == 1
        # Caller's snapshot untouched.
        assert tables[("top",)].n_entries == 3

    def test_fully_pruned_tables_disappear(self, tmp_path):
        store = PolicyStore(tmp_path)
        tables = _tables({
            ("top",): [("s", "a", 1.0, 5)],
            ("bottom", "g"): [("s", "a", 1.0, 1)],
        })
        loaded, __ = store.load(store.save("p", tables, prune_min_visits=3))
        assert list(loaded) == [("top",)]

    def test_list_reports_every_version(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.save("a", _tables({("top",): [("s", "x", 1.0, 1)]}))
        store.save("a", _tables({("top",): [("s", "x", 2.0, 1)]}))
        store.save("b", _tables({("top",): [("s", "x", 3.0, 1)]}))
        infos = store.list()
        assert [(p.name, p.version) for p in infos] == [
            ("a", 1), ("a", 2), ("b", 1)]
        assert all(p.entries == 1 for p in infos)
        assert infos[0].ref == "a@1"

    def test_unknown_refs_raise(self, tmp_path):
        store = PolicyStore(tmp_path)
        with pytest.raises(KeyError, match="no stored policy"):
            store.load("ghost")
        store.save("real", _tables({("top",): [("s", "a", 1.0, 1)]}))
        with pytest.raises(KeyError, match="no version 9"):
            store.load("real@9")

    def test_bad_names_rejected(self, tmp_path):
        store = PolicyStore(tmp_path)
        for bad in ("", "../evil", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="policy name"):
                store.save(bad, _tables({("top",): [("s", "a", 1.0, 1)]}))

    def test_files_readable_by_persistence_layer_alone(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.save("plain", _tables({("top",): [("s", "a", 1.0, 2)]}))
        tables, meta = load_tables_snapshot(tmp_path / "plain" / "v0001.json")
        assert tables[("top",)].get("s", "a") == 1.0
        assert meta["version"] == 1


class TestConcurrentSaves:
    def test_racing_saves_get_distinct_versions(self, tmp_path):
        """Two saves that both observed the same latest version must not
        clobber each other (exclusive-create + retry)."""
        import threading

        store = PolicyStore(tmp_path)
        barrier = threading.Barrier(2)
        refs = []

        def save(value):
            barrier.wait()
            refs.append(store.save(
                "raced", _tables({("top",): [("s", "a", value, 1)]})))

        threads = [threading.Thread(target=save, args=(float(v),))
                   for v in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(refs) == ["raced@1", "raced@2"]
        assert store.versions("raced") == [1, 2]
        values = sorted(
            store.load(f"raced@{v}")[0][("top",)].get("s", "a")
            for v in (1, 2)
        )
        assert values == [1.0, 2.0]


class TestRefParsing:
    def test_non_numeric_version_is_a_key_error(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.save("base", _tables({("top",): [("s", "a", 1.0, 1)]}))
        with pytest.raises(KeyError, match="bad policy version"):
            store.load("base@latest")
