"""Schema tests: JSON round-trips, validation, placement/metrics codecs."""

import json

import pytest

from repro.eval.metrics import Metrics
from repro.layout.placement import CanvasSpec, Placement
from repro.service import (
    SCHEMA_VERSION,
    PlacementRequest,
    PlacementResult,
    TrainRequest,
    metrics_from_dict,
    metrics_to_dict,
    placement_from_dict,
    placement_to_dict,
    request_from_json_dict,
)


class TestPlacementRequestSchema:
    def test_json_round_trip_is_identity(self):
        request = PlacementRequest(circuit="ota2s", steps=123, seed=7,
                                   batch=4, ql_worse_tolerance=0.3)
        wire = json.loads(json.dumps(request.to_json_dict()))
        assert PlacementRequest.from_json_dict(wire) == request

    def test_inline_spice_round_trip(self):
        request = PlacementRequest(
            spice="m1 d g s b nmos40 w=1e-6 l=0.15e-6\n",
            spice_kind="cm", spice_canvas=(6, 6),
            spice_inputs=("g",), spice_outputs=("d",),
            spice_params={"iref": 2e-5, "probe_sources": ["vp"]},
        )
        wire = json.loads(json.dumps(request.to_json_dict()))
        assert PlacementRequest.from_json_dict(wire) == request

    def test_list_and_tuple_construction_are_equal(self):
        listy = PlacementRequest(spice="x\n", spice_inputs=["a"],
                                 spice_canvas=[4, 4])
        tupley = PlacementRequest(spice="x\n", spice_inputs=("a",),
                                  spice_canvas=(4, 4))
        assert listy == tupley

    def test_requires_exactly_one_circuit_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            PlacementRequest()
        with pytest.raises(ValueError, match="exactly one"):
            PlacementRequest(circuit="cm", spice="...")

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="placer"):
            PlacementRequest(circuit="cm", placer="gradient-descent")
        with pytest.raises(ValueError, match="steps"):
            PlacementRequest(circuit="cm", steps=0)
        with pytest.raises(ValueError, match="batch"):
            PlacementRequest(circuit="cm", batch=0)
        with pytest.raises(ValueError, match="warm_start_how"):
            PlacementRequest(circuit="cm", warm_start_how="average")
        with pytest.raises(ValueError, match="warm_policy"):
            PlacementRequest(circuit="cm", placer="sa", warm_policy="p")

    def test_rejects_unknown_keys_and_newer_schema(self):
        with pytest.raises(ValueError, match="does not understand"):
            PlacementRequest.from_json_dict({"circuit": "cm", "stepz": 10})
        with pytest.raises(ValueError, match="schema version"):
            PlacementRequest.from_json_dict(
                {"circuit": "cm", "schema_version": SCHEMA_VERSION + 1})


class TestTrainRequestSchema:
    def test_json_round_trip_is_identity(self):
        request = TrainRequest(circuit="ota5t", workers=2, rounds=4,
                               steps=33, merge_how="visits",
                               target_scale=0.9, save_policy="base",
                               prune_min_visits=2, prune_min_abs_q=1e-6)
        wire = json.loads(json.dumps(request.to_json_dict()))
        assert TrainRequest.from_json_dict(wire) == request

    def test_validation(self):
        with pytest.raises(ValueError, match="circuit"):
            TrainRequest()
        with pytest.raises(ValueError, match="no Q-tables"):
            TrainRequest(circuit="cm", placer="sa")
        with pytest.raises(ValueError, match="merge_how"):
            TrainRequest(circuit="cm", merge_how="average")
        with pytest.raises(ValueError, match="target_scale"):
            TrainRequest(circuit="cm", target_scale=0.0)
        with pytest.raises(ValueError, match="prune"):
            TrainRequest(circuit="cm", prune_min_visits=-1)

    def test_dispatch_by_shape(self):
        assert isinstance(
            request_from_json_dict({"circuit": "cm", "workers": 2}),
            TrainRequest,
        )
        assert isinstance(
            request_from_json_dict({"circuit": "cm", "steps": 10}),
            PlacementRequest,
        )


class TestPlacementCodec:
    def test_placement_round_trip(self):
        placement = Placement(CanvasSpec(4, 3))
        placement.place(("m1", 0), (0, 0))
        placement.place(("m1", 1), (3, 2))
        placement.place(("m2", 0), (1, 1))
        data = json.loads(json.dumps(placement_to_dict(placement)))
        restored = placement_from_dict(data)
        assert restored.canvas == placement.canvas
        assert set(restored.units) == set(placement.units)
        for unit in placement.units:
            assert restored.cell_of(unit) == placement.cell_of(unit)

    def test_metrics_round_trip(self):
        metrics = Metrics(kind="cm", primary="mismatch_pct",
                          values={"mismatch_pct": 1.25, "area_um2": 40.0})
        data = json.loads(json.dumps(metrics_to_dict(metrics)))
        assert metrics_from_dict(data) == metrics
        assert metrics_to_dict(None) is None
        assert metrics_from_dict(None) is None


class TestPlacementResultSchema:
    def _result(self):
        placement = Placement(CanvasSpec(2, 2))
        placement.place(("m1", 0), (0, 1))
        return PlacementResult(
            kind="place", circuit="cm", placer="ql", seed=1, steps=50,
            batch=1, best_cost=0.25, initial_cost=1.0, target=0.5,
            reached_target=True, sims_used=42, sims_to_target=17,
            history=[[1, 1.0], [17, 0.25]],
            placement=placement_to_dict(placement),
            metrics={"kind": "cm", "primary": "mismatch_pct",
                     "values": {"mismatch_pct": 0.25}},
            detail=object(),
        )

    def test_json_round_trip_drops_detail_only(self):
        result = self._result()
        wire = json.loads(json.dumps(result.to_json_dict()))
        restored = PlacementResult.from_json_dict(wire)
        assert restored.detail is None
        assert restored.to_json_dict() == result.to_json_dict()
        # dataclass equality ignores detail (compare=False)
        assert restored == result

    def test_objects_rebuild(self):
        result = self._result()
        assert result.placement_object().cell_of(("m1", 0)) == (0, 1)
        assert result.metrics_object().primary_value == 0.25

    def test_unknown_keys_rejected(self):
        wire = self._result().to_json_dict()
        wire["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            PlacementResult.from_json_dict(wire)
