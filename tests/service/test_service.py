"""PlacementService facade: execution, determinism, jobs, policies."""

import threading

import pytest

from repro.runtime.backend import ProcessPoolBackend, SerialBackend
from repro.runtime.spec import RunSpec, map_runs
from repro.service import PlacementRequest, TrainRequest
from repro.service.service import PlacementService

QUICK_PLACE = dict(circuit="ota5t", steps=30, seed=1)


@pytest.fixture()
def service(tmp_path):
    svc = PlacementService(policies=tmp_path / "policies")
    yield svc
    svc.close()


class TestPlace:
    def test_place_matches_direct_runtime_execution(self, service):
        """The facade adds zero behavior: the result equals running the
        request's spec directly on the runtime."""
        request = PlacementRequest(**QUICK_PLACE)
        result = service.place(request)
        outcome = map_runs([RunSpec.from_request(request)], SerialBackend())[0]
        assert result.best_cost == outcome.result.best_cost
        assert result.sims_used == outcome.result.sims_used
        assert result.metrics_object() == outcome.metrics
        assert result.placement_object().units == tuple(
            outcome.result.best_placement.units)

    def test_serial_and_process_backends_bit_identical(self, tmp_path):
        request = PlacementRequest(**QUICK_PLACE)
        with PlacementService(policies=tmp_path / "p1") as serial_svc, \
                PlacementService(policies=tmp_path / "p2",
                                 backend=ProcessPoolBackend(jobs=2)) as pool_svc:
            serial = serial_svc.place(request)
            pooled = pool_svc.place(request)
        assert serial.to_json_dict() == pooled.to_json_dict()

    def test_unknown_circuit_rejected(self, service):
        with pytest.raises(ValueError, match="unknown circuit"):
            service.place(PlacementRequest(circuit="dac", steps=10))

    def test_render_svg(self, service):
        result = service.place(PlacementRequest(**QUICK_PLACE))
        assert service.render_svg(result).startswith("<svg")


class TestTrainAndPolicies:
    def test_train_normalizes_campaign_and_stores_policy(self, service):
        request = TrainRequest(circuit="ota5t", workers=2, rounds=2,
                               steps=20, save_policy="ota5t-base",
                               stop_at_target=False)
        result = service.train(request)
        campaign = result.detail
        assert result.kind == "train"
        assert result.best_cost == campaign.best_cost
        assert result.sims_used == campaign.total_sims
        assert result.params["rounds_run"] == campaign.rounds_run
        assert result.policy == "ota5t-base@1"
        assert result.metrics is not None
        tables, meta = service.policies.load("ota5t-base")
        assert sum(t.n_entries for t in tables.values()) > 0
        assert meta["circuit"] == "ota5t"

    def test_warm_policy_feeds_placement(self, service):
        train = TrainRequest(circuit="ota5t", workers=2, rounds=1,
                             steps=20, save_policy="warm",
                             stop_at_target=False)
        service.train(train)
        warm = service.place(PlacementRequest(**QUICK_PLACE,
                                              warm_policy="warm"))
        # The stored policy reaches the worker: the served run equals a
        # direct runtime run whose spec carries the loaded tables.
        tables, __ = service.policies.load("warm")
        spec = RunSpec.from_request(PlacementRequest(**QUICK_PLACE),
                                    initial_tables=tables)
        outcome = map_runs([spec], SerialBackend())[0]
        assert warm.best_cost == outcome.result.best_cost
        assert warm.sims_used == outcome.result.sims_used

    def test_warm_policy_is_deterministic(self, service):
        service.train(TrainRequest(circuit="ota5t", workers=2, rounds=1,
                                   steps=15, save_policy="det",
                                   stop_at_target=False))
        request = PlacementRequest(**QUICK_PLACE, warm_policy="det")
        first = service.place(request)
        second = service.place(request)
        assert first.to_json_dict() == second.to_json_dict()


class TestJobManager:
    def test_submit_status_result(self, service):
        job = service.submit(PlacementRequest(**QUICK_PLACE))
        result = service.result(job, timeout=300)
        record = service.status(job)
        assert record.state == "done"
        assert record.result is result
        assert record.finished_at >= record.started_at >= record.submitted_at
        # Async execution is the same execution.
        assert result.to_json_dict() == service.place(
            PlacementRequest(**QUICK_PLACE)).to_json_dict()

    def test_jobmanager_preserves_backend_determinism(self, tmp_path):
        """Serial ≡ process-pool survives the queueing layer."""
        requests = [PlacementRequest(circuit="ota5t", steps=25, seed=s)
                    for s in (1, 2, 3)]
        payloads = {}
        for label, backend in (("serial", None),
                               ("pool", ProcessPoolBackend(jobs=2))):
            with PlacementService(policies=tmp_path / label,
                                  backend=backend, job_workers=2) as svc:
                ids = [svc.submit(r) for r in requests]
                payloads[label] = [
                    svc.result(i, timeout=600).to_json_dict() for i in ids
                ]
        assert payloads["serial"] == payloads["pool"]

    def test_failed_job_reports_error(self, service):
        job = service.submit(PlacementRequest(circuit="cm", steps=10,
                                              warm_policy="missing"))
        with pytest.raises(RuntimeError, match="failed"):
            service.result(job, timeout=60)
        assert service.status(job).state == "failed"
        assert "missing" in service.status(job).error

    def test_cancel_queued_job(self, tmp_path):
        gate = threading.Event()

        def blocking_runner(request):
            gate.wait(30)
            return None

        from repro.service.jobs import JobManager

        manager = JobManager(blocking_runner, workers=1)
        try:
            first = manager.submit(PlacementRequest(**QUICK_PLACE))
            second = manager.submit(PlacementRequest(**QUICK_PLACE))
            assert manager.cancel(second) is True
            assert manager.status(second).state == "cancelled"
            gate.set()
            manager.result(first, timeout=30)
            with pytest.raises(RuntimeError, match="cancelled"):
                manager.result(second, timeout=5)
            assert manager.status(second).state == "cancelled"
        finally:
            gate.set()
            manager.shutdown()

    def test_unknown_job_raises(self, service):
        with pytest.raises(KeyError):
            service.status("job-999")
        with pytest.raises(KeyError):
            service.result("job-999")
        counts = service.jobs.counts()
        assert set(counts) == {"queued", "running", "done", "failed",
                               "cancelled"}


class TestCustomRegistry:
    def test_custom_registry_keys_execute_and_render(self, tmp_path):
        """A service built on its own registry must place and render its
        circuits, not just validate them (keys unknown to the global
        BUILDERS table ship as resolved builder callables)."""
        from repro.netlist.library import five_transistor_ota
        from repro.service import CircuitRegistry

        registry = CircuitRegistry({"mine": five_transistor_ota})
        with PlacementService(registry=registry,
                              policies=tmp_path / "p") as svc:
            result = svc.place(PlacementRequest(circuit="mine", steps=20))
            assert result.circuit == "mine"
            assert result.best_cost > 0
            assert svc.render_svg(result).startswith("<svg")
            with pytest.raises(ValueError, match="unknown circuit"):
                svc.place(PlacementRequest(circuit="ghost", steps=5))
