"""RunSpec ⇄ PlacementRequest: two views of one schema."""

import pytest

from repro.runtime.spec import BUILDERS, RunSpec
from repro.service import PlacementRequest, default_registry


class TestSpecRequestBridge:
    def test_from_request_reproduces_the_place_spec(self):
        """The served ``/place`` spec is exactly what ``repro place``
        historically built — the bit-identical-serving precondition."""
        request = PlacementRequest(circuit="ota5t", steps=60, seed=3,
                                   batch=2)
        spec = RunSpec.from_request(request)
        assert spec == RunSpec(
            key="place", builder="ota5t", placer="ql", seed=3,
            max_steps=60, batch=2, target_from_symmetric=True,
            share_target_evaluator=True,
        )

    def test_round_trip_identity_from_request(self):
        request = PlacementRequest(circuit="cm", placer="flat", steps=77,
                                   seed=9, batch=3, epsilon_decay_frac=0.5,
                                   ql_worse_tolerance=0.1,
                                   stop_at_target=True)
        assert RunSpec.from_request(request).to_request() == request

    def test_round_trip_identity_from_spec(self):
        spec = RunSpec(
            key="place", builder="ota2s", placer="ql", seed=5,
            max_steps=40, batch=2, target_from_symmetric=True,
            share_target_evaluator=True, stop_at_target=True,
            ql_worse_tolerance=0.2,
        )
        assert RunSpec.from_request(spec.to_request()) == spec

    def test_explicit_target_survives(self):
        request = PlacementRequest(circuit="cm", target=0.125, steps=20)
        spec = RunSpec.from_request(request)
        assert spec.target == 0.125
        assert not spec.target_from_symmetric
        assert spec.to_request().target == 0.125

    def test_warm_tables_are_injected(self):
        tables = {("top",): object()}
        spec = RunSpec.from_request(
            PlacementRequest(circuit="cm", steps=10),
            initial_tables=tables,
        )
        assert spec.initial_tables is tables

    def test_callable_builder_has_no_wire_form(self):
        spec = RunSpec(key="x", builder=BUILDERS["cm"])
        with pytest.raises(ValueError, match="registry-keyed"):
            spec.to_request()

    def test_inline_spice_builds_a_block(self):
        deck = (
            "mm1 vg vg gnd gnd nmos40 w=1e-6 l=0.15e-6 m=2\n"
            "mm2 o vg gnd gnd nmos40 w=1e-6 l=0.15e-6 m=2\n"
            "vvvdd vdd 0 dc 1.1\n"
            "iiref vdd vg dc 2e-5\n"
            "vvprobe o 0 dc 0.55\n"
        )
        request = PlacementRequest(spice=deck, spice_kind="cm",
                                   spice_name="mini", steps=10)
        spec = RunSpec.from_request(request)
        block = spec.builder
        assert block.name == "mini"
        assert block.kind == "cm"
        assert block.circuit.total_units() == 4
        cols, rows = block.canvas
        assert cols * rows >= 8  # auto-sized with slack


class TestRegistryIsShared:
    def test_spec_builders_are_the_registry_view(self):
        registry = default_registry()
        assert set(BUILDERS) == set(registry.keys())
        for key in registry.keys():
            assert BUILDERS[key] is registry.builder(key)

    def test_registration_is_visible_everywhere(self):
        registry = default_registry()
        marker = "test-shared-registry-key"
        registry.register(marker, registry.builder("cm"))
        try:
            assert marker in BUILDERS
            RunSpec(key="x", builder=marker)  # validates against BUILDERS
        finally:
            del registry._builders[marker]


class TestOffSchemaSpecs:
    def test_behavior_bearing_fields_refuse_to_convert(self):
        """Fields the request schema cannot express must fail loudly —
        a silently narrowed request would execute a different run."""
        for kwargs in (
            dict(variation_kind="linear"),
            dict(builder_kwargs=(("units_per_device", 2),)),
            dict(evaluate_best=False),
            dict(return_tables=True),
            dict(initial_tables={}),
        ):
            spec = RunSpec(key="x", builder="cm", **kwargs)
            with pytest.raises(ValueError, match="request-schema"):
                spec.to_request()
