"""Serving the policy zoo: ``warm_policy="auto"``, ref pinning, and the
HTTP contract around them — schema errors are 400 at submit, unknown
refs fail the job loudly, an empty zoo falls back to a cold start with
the match report echoed."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import PlacementRequest, TrainRequest
from repro.service.http import make_server, server_thread
from repro.service.service import PlacementService

QUICK = dict(circuit="cm", steps=25, seed=3)


def _post_json(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as resp:
        return resp.status, json.loads(resp.read())


def _get_json(url):
    with urllib.request.urlopen(url) as resp:
        return json.loads(resp.read())


@pytest.fixture(scope="module")
def zoo_served(tmp_path_factory):
    """A service whose store holds one trained, zoo-stamped cm policy."""
    tmp_path = tmp_path_factory.mktemp("zoo")
    service = PlacementService(policies=tmp_path / "policies")
    trained = service.train(TrainRequest(
        circuit="cm", workers=2, rounds=1, steps=40, seed=0,
        save_policy="cm-base",
    ))
    assert trained.policy == "cm-base@1"
    server = make_server(service)
    server_thread(server)
    yield server.url, service
    server.shutdown()
    server.server_close()
    service.close()


class TestRequestSchema:
    def test_zoo_options_require_auto(self):
        with pytest.raises(ValueError, match="auto"):
            PlacementRequest(**QUICK, zoo={"min_tier": "exact"})
        with pytest.raises(ValueError, match="min_tier"):
            PlacementRequest(**QUICK, warm_policy="auto",
                             zoo={"min_tier": "fuzzy"})
        with pytest.raises(ValueError, match="zoo"):
            PlacementRequest(**QUICK, warm_policy="auto",
                             zoo={"sources": 2})

    def test_http_rejects_bad_zoo_payloads_as_400(self, zoo_served):
        url, __ = zoo_served
        bad = [
            {**QUICK, "zoo": {"min_tier": "exact"}},           # no auto
            {**QUICK, "warm_policy": "auto",
             "zoo": {"max_sources": 0}},                       # bad cap
            {**QUICK, "objective": {"speed": 1.0}},            # bad weight
            {**QUICK, "exploration": "boltzmann"},             # bad mode
        ]
        for payload in bad:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post_json(url + "/place", payload)
            assert err.value.code == 400


class TestWarmPolicyRefs:
    def test_pinned_ref_equals_latest(self, zoo_served):
        __, service = zoo_served
        pinned = service.place(
            PlacementRequest(**QUICK, warm_policy="cm-base@1"))
        latest = service.place(
            PlacementRequest(**QUICK, warm_policy="cm-base"))
        assert pinned.to_json_dict() == latest.to_json_dict()

    def test_unknown_ref_fails_the_job_not_a_fallback(self, zoo_served):
        url, service = zoo_served
        __, payload = _post_json(
            url + "/place",
            PlacementRequest(**QUICK, warm_policy="cm-base@9").to_json_dict())
        job = payload["job"]
        deadline = time.time() + 60
        while (service.jobs.status(job).state not in ("done", "failed")
               and time.time() < deadline):
            time.sleep(0.05)
        record = service.jobs.status(job)
        assert record.state == "failed"
        assert "no version 9" in record.error

    def test_unknown_name_is_a_404_probe_via_policies(self, zoo_served):
        url, __ = zoo_served
        # The store's listing is how clients discover valid refs; an
        # unknown name is simply absent (and /policies/<x> is no route).
        names = {p["name"] for p in _get_json(url + "/policies")["policies"]}
        assert "cm-base" in names and "nope" not in names
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url + "/policies/nope")
        assert err.value.code == 404


class TestAutoWarm:
    def test_auto_with_match_echoes_report_and_beats_schema(self, zoo_served):
        __, service = zoo_served
        result = service.place(
            PlacementRequest(**QUICK, warm_policy="auto"))
        report = result.params["zoo"]
        assert report["policies_scanned"] >= 1
        matched = [g for g in report["groups"].values() if g["tier"]]
        assert matched, report
        assert all(g["tier"] == "exact" for g in matched)
        assert any("cm-base@1" in src
                   for g in matched for src in g["sources"])

    def test_auto_report_served_over_http(self, zoo_served):
        url, __ = zoo_served
        status, payload = _post_json(
            url + "/place?wait=1",
            PlacementRequest(**QUICK, warm_policy="auto").to_json_dict())
        assert status == 200
        assert payload["result"]["params"]["zoo"]["policies_scanned"] >= 1

    def test_auto_on_empty_store_is_cold_fallback(self, tmp_path):
        service = PlacementService(policies=tmp_path / "empty")
        try:
            auto = service.place(
                PlacementRequest(**QUICK, warm_policy="auto"))
            cold = service.place(PlacementRequest(**QUICK))
            report = auto.params.pop("zoo")
            assert report["policies_scanned"] == 0
            assert all(g["tier"] is None for g in report["groups"].values())
            assert auto.to_json_dict() == cold.to_json_dict()
        finally:
            service.close()

    def test_ucb_exploration_and_objective_thread_through_serving(
            self, zoo_served):
        """The new request fields reach the runtime: UCB mode runs (and
        is deterministic), non-default objectives change the cost."""
        __, service = zoo_served
        ucb_a = service.place(
            PlacementRequest(**QUICK, warm_policy="auto",
                             exploration="ucb"))
        ucb_b = service.place(
            PlacementRequest(**QUICK, warm_policy="auto",
                             exploration="ucb"))
        assert ucb_a.to_json_dict() == ucb_b.to_json_dict()

        default = service.place(PlacementRequest(**QUICK))
        weighted = service.place(
            PlacementRequest(**QUICK,
                             objective={"noise": 5.0, "parasitics": 1.0}))
        assert weighted.best_cost > default.best_cost

    def test_sa_placer_rejects_ucb(self):
        with pytest.raises(ValueError, match="Q-learning placer"):
            PlacementRequest(**QUICK, placer="sa", exploration="ucb")

    def test_policies_listing_surfaces_zoo_meta(self, zoo_served):
        url, __ = zoo_served
        infos = _get_json(url + "/policies")["policies"]
        zoo_meta = next(p for p in infos if p["ref"] == "cm-base@1")["meta"]
        assert "zoo" in zoo_meta
        assert zoo_meta["zoo"]["groups"]
        assert zoo_meta["zoo"]["top_visits"] > 0
