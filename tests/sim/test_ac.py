"""AC analysis tests against analytic RC and amplifier responses."""

import math

import numpy as np
import pytest

from repro.netlist import (
    Capacitor,
    Circuit,
    Mosfet,
    Resistor,
    VoltageSource,
)
from repro.sim import (
    bandwidth_3db,
    dc_gain,
    logspace_frequencies,
    solve_ac,
    solve_dc,
)
from repro.sim.mosfet import terminal_currents
from repro.tech import generic_tech_40

TECH = generic_tech_40()


def rc_lowpass(r=10e3, c=1e-12):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", {"p": "in", "n": "gnd"}, dc=0.0, ac=1.0))
    ckt.add(Resistor("r1", {"a": "in", "b": "out"}, value=r))
    ckt.add(Capacitor("c1", {"a": "out", "b": "gnd"}, value=c))
    return ckt


class TestRcLowpass:
    def setup_method(self):
        self.r, self.c = 10e3, 1e-12
        self.fp = 1.0 / (2 * math.pi * self.r * self.c)
        ckt = rc_lowpass(self.r, self.c)
        op = solve_dc(ckt, TECH)
        freqs = logspace_frequencies(self.fp / 1e3, self.fp * 1e3, 20)
        self.result = solve_ac(ckt, TECH, op.voltages, freqs)

    def test_dc_gain_unity(self):
        assert dc_gain(self.result.transfer("out")) == pytest.approx(1.0, rel=1e-6)

    def test_pole_location(self):
        bw = bandwidth_3db(self.result.freqs, self.result.transfer("out"))
        assert bw == pytest.approx(self.fp, rel=0.05)

    def test_phase_at_pole(self):
        h = self.result.transfer("out")
        k = int(np.argmin(np.abs(self.result.freqs - self.fp)))
        assert math.degrees(np.angle(h[k])) == pytest.approx(-45.0, abs=4.0)

    def test_high_frequency_rolloff_20db_per_decade(self):
        h = np.abs(self.result.transfer("out"))
        f = self.result.freqs
        k1 = int(np.argmin(np.abs(f - 100 * self.fp)))
        k2 = int(np.argmin(np.abs(f - 1000 * self.fp)))
        slope_db = 20 * math.log10(h[k2] / h[k1])
        assert slope_db == pytest.approx(-20.0, abs=1.0)


class TestCommonSourceAmp:
    def setup_method(self):
        self.ckt = Circuit("cs")
        self.ckt.add(VoltageSource("vdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
        self.ckt.add(VoltageSource("vin", {"p": "in", "n": "gnd"}, dc=0.55, ac=1.0))
        self.ckt.add(Resistor("rl", {"a": "vdd", "b": "out"}, value=20e3))
        self.ckt.add(Capacitor("cl", {"a": "out", "b": "gnd"}, value=1e-12))
        self.ckt.add(Mosfet("m1", {"d": "out", "g": "in", "s": "gnd", "b": "gnd"},
                            polarity=+1, width=2e-6, length=0.2e-6, n_units=2))
        self.op = solve_dc(self.ckt, TECH)
        freqs = logspace_frequencies(1e3, 1e11, 10)
        self.result = solve_ac(self.ckt, TECH, self.op.voltages, freqs)

    def _analytic_gain(self):
        m = self.ckt.device("m1")
        op = terminal_currents(
            TECH.nmos, m.width, m.length,
            self.op.voltage("out"), self.op.voltage("in"), 0.0, 0.0,
        )
        r_load = 20e3
        r_out = 1.0 / (op.gds + 1.0 / r_load)
        return op.gm * r_out

    def test_low_frequency_gain_matches_analytic(self):
        gain = dc_gain(self.result.transfer("out"))
        assert gain == pytest.approx(self._analytic_gain(), rel=0.02)

    def test_gain_is_inverting(self):
        h = self.result.transfer("out")
        assert math.degrees(abs(np.angle(h[0]))) == pytest.approx(180.0, abs=2.0)

    def test_bandwidth_set_by_load(self):
        bw = bandwidth_3db(self.result.freqs, self.result.transfer("out"))
        r_eff = 1.0 / (1.0 / 20e3)  # dominated by the load resistor
        f_expected = 1.0 / (2 * math.pi * r_eff * 1e-12)
        # Device output conductance and junction caps shift it slightly.
        assert bw == pytest.approx(f_expected, rel=0.30)

    def test_differential_helper(self):
        diff = self.result.differential("out", "in")
        single = self.result.transfer("out") - self.result.transfer("in")
        assert np.allclose(diff, single)


class TestValidation:
    def test_frequency_grid_validation(self):
        with pytest.raises(ValueError, match="f_start"):
            logspace_frequencies(0.0, 1e6)
        with pytest.raises(ValueError, match="f_start"):
            logspace_frequencies(1e6, 1e3)

    def test_missing_op_net_rejected(self):
        ckt = rc_lowpass()
        ckt.add(Mosfet("m1", {"d": "out", "g": "in", "s": "gnd", "b": "gnd"},
                       polarity=+1, width=1e-6, length=0.2e-6))
        with pytest.raises(KeyError, match="operating point"):
            solve_ac(ckt, TECH, {"in": 0.0}, np.array([1e6]))

    def test_unknown_net_transfer(self):
        ckt = rc_lowpass()
        op = solve_dc(ckt, TECH)
        result = solve_ac(ckt, TECH, op.voltages, np.array([1e6]))
        with pytest.raises(KeyError, match="net"):
            result.transfer("ghost")
