"""Placement-batched solves vs the sequential compiled path.

For every library block we build K placement variants — different
parasitic annotations and different variation deltas, identical structure
— and check that the batched drivers (`solve_dc_many` / `solve_ac_many` /
`solve_noise_many`) agree with the scalar compiled path placement-for-
placement to ≤ 1e-10.  This is the contract that lets the evaluator price
candidate batches without changing a single metric.
"""

import numpy as np
import pytest

from repro.eval.evaluator import PlacementEvaluator
from repro.layout.generators import banded_placement
from repro.netlist.library import (
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
    two_stage_ota,
)
from repro.netlist.nets import is_ground
from repro.route.parasitics import annotate_parasitics
from repro.sim import (
    batched_system,
    logspace_frequencies,
    solve_ac,
    solve_ac_many,
    solve_dc,
    solve_dc_many,
    solve_noise,
    solve_noise_many,
)
from repro.tech import generic_tech_40

BUILDERS = {
    "cm": current_mirror,
    "comp": comparator,
    "ota": folded_cascode_ota,
    "ota5t": five_transistor_ota,
    "ota2s": two_stage_ota,
}
STYLES = ("sequential", "ysym", "common_centroid")
FREQS = logspace_frequencies(1e4, 1e9, points_per_decade=3)
TOL = 1e-10


@pytest.fixture(scope="module")
def batches():
    """kind → (circuits, deltas_list, tech) for K=3 placement variants."""
    tech = generic_tech_40()
    out = {}
    for kind, builder in BUILDERS.items():
        block = builder()
        evaluator = PlacementEvaluator(block, tech=tech)
        circuits, deltas_list = [], []
        for style in STYLES:
            placement = banded_placement(block, style)
            circuits.append(
                annotate_parasitics(block.circuit, placement, tech))
            deltas_list.append(evaluator.deltas_for(placement))
        out[kind] = (circuits, deltas_list, tech)
    return out


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_dc_many_matches_sequential(batches, kind):
    circuits, deltas_list, tech = batches[kind]
    batch = solve_dc_many(circuits, tech, deltas_list)
    for circuit, deltas, got in zip(circuits, deltas_list, batch):
        want = solve_dc(circuit, tech, deltas=deltas)
        assert set(got.voltages) == set(want.voltages)
        for net, v in want.voltages.items():
            assert got.voltages[net] == pytest.approx(v, abs=TOL, rel=TOL)
        for name, i in want.branch_currents.items():
            assert got.branch_currents[name] == pytest.approx(
                i, abs=TOL, rel=TOL)


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_ac_many_matches_sequential(batches, kind):
    circuits, deltas_list, tech = batches[kind]
    ops = [solve_dc(c, tech, deltas=d).voltages
           for c, d in zip(circuits, deltas_list)]
    batch = solve_ac_many(circuits, tech, ops, FREQS, deltas_list)
    for circuit, op, deltas, got in zip(circuits, ops, deltas_list, batch):
        want = solve_ac(circuit, tech, op, FREQS, deltas=deltas)
        for net in circuit.nets():
            np.testing.assert_allclose(
                got.transfer(net), want.transfer(net), atol=TOL, rtol=TOL)


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_noise_many_matches_sequential(batches, kind):
    circuits, deltas_list, tech = batches[kind]
    output = next(n for n in sorted(circuits[0].nets()) if not is_ground(n))
    ops = [solve_dc(c, tech, deltas=d).voltages
           for c, d in zip(circuits, deltas_list)]
    batch = solve_noise_many(
        circuits, tech, ops, FREQS, output, deltas_list)
    for circuit, op, deltas, got in zip(circuits, ops, deltas_list, batch):
        want = solve_noise(circuit, tech, op, FREQS, output, deltas=deltas)
        np.testing.assert_allclose(
            got.output_psd, want.output_psd, rtol=1e-10)
        assert set(got.contributions) == set(want.contributions)
        for name, psd in want.contributions.items():
            np.testing.assert_allclose(
                got.contributions[name], psd, rtol=1e-10)


def test_single_circuit_batch_falls_back_scalar(batches):
    circuits, deltas_list, tech = batches["cm"]
    got = solve_dc_many(circuits[:1], tech, deltas_list[:1])[0]
    want = solve_dc(circuits[0], tech, deltas=deltas_list[0])
    assert got.voltages == want.voltages


def test_legacy_engine_loops_scalar(batches):
    circuits, deltas_list, tech = batches["cm"]
    batch = solve_dc_many(circuits, tech, deltas_list, engine="legacy")
    for circuit, deltas, got in zip(circuits, deltas_list, batch):
        want = solve_dc(circuit, tech, deltas=deltas, engine="legacy")
        for net, v in want.voltages.items():
            assert got.voltages[net] == pytest.approx(v, abs=TOL, rel=TOL)


def test_mixed_signatures_rejected(batches):
    cm_circuits, __, tech = batches["cm"]
    ota_circuits, __, __t = batches["ota5t"]
    with pytest.raises(ValueError, match="signature"):
        batched_system([cm_circuits[0], ota_circuits[0]], tech)


def test_warm_start_accepted_per_row_and_shared(batches):
    circuits, deltas_list, tech = batches["cm"]
    cold = solve_dc_many(circuits, tech, deltas_list)
    shared = solve_dc_many(circuits, tech, deltas_list, x0=cold[0].x)
    per_row = solve_dc_many(
        circuits, tech, deltas_list, x0=[r.x for r in cold])
    for a, b, c in zip(cold, shared, per_row):
        for net, v in a.voltages.items():
            assert b.voltages[net] == pytest.approx(v, abs=TOL, rel=TOL)
            assert c.voltages[net] == pytest.approx(v, abs=TOL, rel=TOL)
