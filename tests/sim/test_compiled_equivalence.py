"""Compiled-engine equivalence: every analysis matches the legacy loop.

The compiled MNA engine (cached topology, vectorized stamping, batched AC
solves) must be *behaviour-preserving*: for every library block, under
nominal parameters, a skewed global corner and random per-device deltas,
DC / AC / noise / transient results must match the legacy per-device
assembly to tight tolerances, and reusing one cached topology across many
placements must never change metrics.
"""

import dataclasses
import zlib

import numpy as np
import pytest

from repro.eval.evaluator import PlacementEvaluator
from repro.layout.generators import banded_placement
from repro.netlist.devices import VoltageSource
from repro.netlist.library import (
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
    two_stage_ota,
)
from repro.sim import (
    clear_topology_cache,
    get_engine,
    set_engine,
    solve_ac,
    solve_dc,
    solve_noise,
    solve_transient,
    step_waveform,
    structure_signature,
    topology_cache_info,
    use_engine,
)
from repro.tech import generic_tech_40
from repro.variation import DeviceDelta, corner

TECH = generic_tech_40()

BUILDERS = {
    "cm": current_mirror,
    "comp": comparator,
    "ota": folded_cascode_ota,
    "ota5t": five_transistor_ota,
    "ota2s": two_stage_ota,
}

# A handful of frequency points spanning the band is enough to exercise
# the batched assembly; the grid itself is identical for both engines.
FREQS = np.logspace(4, 9, 6)

# Net used as the noise output (must not be clamped by a voltage source).
NOISE_OUTPUT = {"cm": "bias", "comp": "outp", "ota": "outp",
                "ota5t": "outp", "ota2s": "outp"}


def _dc_circuit(name, block):
    """The DC testbench: the raw block, clamped for the bistable latch."""
    if name == "comp":
        clamp_v = block.params["clamp_v"]
        return block.circuit.copy_with(extra=[
            VoltageSource("vclampp", {"p": "outp", "n": "gnd"}, dc=clamp_v),
            VoltageSource("vclampn", {"p": "outn", "n": "gnd"}, dc=clamp_v),
        ])
    return block.circuit


def _variants(name, circuit):
    """deltas for {nominal, corner, random} parameter variants."""
    # Seed from a stable digest: str hash() is salted per process, which
    # made the drawn deltas — and hence this suite's pass/fail — vary
    # from run to run.
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    random_deltas = {
        m.name: DeviceDelta(
            dvth=float(rng.uniform(-0.02, 0.02)),
            dbeta_rel=float(rng.uniform(-0.05, 0.05)),
        )
        for m in circuit.mosfets()
    }
    return {
        "nominal": None,
        "corner": corner("ss").deltas(circuit),
        "random": random_deltas,
    }


def _ac_bench(name, circuit):
    """The block's circuit with a small-signal drive applied."""
    if name == "cm":
        probe = circuit.device("vprobeout")
        return circuit.copy_with(
            replacements={"vprobeout": dataclasses.replace(probe, ac=1.0)})
    vip = circuit.device("vvip")
    vin = circuit.device("vvin")
    return circuit.copy_with(replacements={
        "vvip": dataclasses.replace(vip, ac=+0.5),
        "vvin": dataclasses.replace(vin, ac=-0.5),
    })


def _params():
    return [
        pytest.param(name, BUILDERS[name](), variant, id=f"{name}-{variant}")
        for name in BUILDERS
        for variant in ("nominal", "corner", "random")
    ]


@pytest.mark.parametrize("name,block,variant", _params())
class TestAnalysisEquivalence:
    def test_dc_matches_legacy(self, name, block, variant):
        circuit = _dc_circuit(name, block)
        deltas = _variants(name, circuit)[variant]
        legacy = solve_dc(circuit, TECH, deltas=deltas, engine="legacy")
        compiled = solve_dc(circuit, TECH, deltas=deltas, engine="compiled")
        for net, v in legacy.voltages.items():
            assert compiled.voltages[net] == pytest.approx(v, abs=1e-10)
        for src, i in legacy.branch_currents.items():
            assert compiled.branch_currents[src] == pytest.approx(i, abs=1e-10)

    def test_ac_matches_legacy(self, name, block, variant):
        circuit = _dc_circuit(name, block)
        deltas = _variants(name, circuit)[variant]
        bench = _ac_bench(name, block.circuit)
        results = {}
        for engine in ("legacy", "compiled"):
            op = solve_dc(circuit, TECH, deltas=deltas, engine=engine)
            results[engine] = solve_ac(
                bench, TECH, op.voltages, FREQS, deltas=deltas, engine=engine)
        for net, h in results["legacy"].node_voltages.items():
            assert np.allclose(
                results["compiled"].node_voltages[net], h,
                rtol=1e-10, atol=1e-10,
            ), f"AC transfer mismatch on net {net!r}"

    def test_noise_matches_legacy(self, name, block, variant):
        circuit = _dc_circuit(name, block)
        deltas = _variants(name, circuit)[variant]
        output = NOISE_OUTPUT[name]
        results = {}
        for engine in ("legacy", "compiled"):
            op = solve_dc(circuit, TECH, deltas=deltas, engine=engine)
            results[engine] = solve_noise(
                block.circuit, TECH, op.voltages, FREQS, output,
                deltas=deltas, engine=engine)
        legacy, compiled = results["legacy"], results["compiled"]
        assert np.allclose(compiled.output_psd, legacy.output_psd,
                           rtol=1e-9, atol=0.0)
        for device, psd in legacy.contributions.items():
            assert np.allclose(compiled.contributions[device], psd,
                               rtol=1e-9, atol=0.0)

    def test_transient_matches_legacy(self, name, block, variant):
        circuit = _dc_circuit(name, block)
        deltas = _variants(name, circuit)[variant]
        if name == "cm":
            waveforms = {"vprobeout": step_waveform(0.4e-9, 0.55, 0.60)}
        else:
            vcm = block.params["vcm"]
            waveforms = {"vvip": step_waveform(0.4e-9, vcm, vcm + 0.05)}
        results = {}
        for engine in ("legacy", "compiled"):
            results[engine] = solve_transient(
                circuit, TECH, t_stop=1.2e-9, dt=0.3e-9, deltas=deltas,
                waveforms=waveforms, engine=engine)
        for net, wave in results["legacy"].node_voltages.items():
            assert np.allclose(results["compiled"].node_voltages[net], wave,
                               rtol=0.0, atol=1e-10)


class TestMetricsEquivalence:
    """PlacementEvaluator produces identical metrics on both engines."""

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_metrics_identical_across_engines(self, name):
        block = BUILDERS[name]()
        for style in ("sequential", "ysym"):
            placement = banded_placement(block, style)
            legacy = PlacementEvaluator(block, engine="legacy").evaluate(placement)
            compiled = PlacementEvaluator(block, engine="compiled").evaluate(placement)
            assert set(legacy.values) == set(compiled.values)
            for key, value in legacy.values.items():
                assert compiled.values[key] == pytest.approx(
                    value, rel=1e-9, abs=1e-9
                ), f"metric {key!r} diverged on {name}/{style}"


def _distinct_placements(block, count=3):
    """Guaranteed-distinct placements: the banded seed plus single moves."""
    placements = [banded_placement(block, "sequential")]
    while len(placements) < count:
        mutated = placements[-1].copy()
        unit = mutated.units[0]
        cols, rows = mutated.canvas.cols, mutated.canvas.rows
        target = next(
            (c, r) for r in range(rows - 1, -1, -1)
            for c in range(cols - 1, -1, -1) if mutated.is_free((c, r))
        )
        mutated.move(unit, target)
        placements.append(mutated)
    return placements


class TestTopologyCache:
    def test_placements_share_one_topology(self):
        block = five_transistor_ota()
        clear_topology_cache()
        evaluator = PlacementEvaluator(block, engine="compiled")
        for placement in _distinct_placements(block):
            evaluator.evaluate(placement)
        info = topology_cache_info()
        # The first evaluation compiles each testbench variant once; the
        # other two placements only produce cache hits.
        assert info["misses"] > 0
        assert info["hits"] >= 2 * info["misses"]

    def test_cache_reuse_never_changes_metrics(self):
        block = five_transistor_ota()
        clear_topology_cache()
        shared = PlacementEvaluator(block, engine="compiled")
        for placement in _distinct_placements(block):
            reused = shared.evaluate(placement)
            # A fresh evaluator on the legacy engine shares no state at all.
            fresh = PlacementEvaluator(block, engine="legacy").evaluate(placement)
            for key, value in fresh.values.items():
                assert reused.values[key] == pytest.approx(
                    value, rel=1e-9, abs=1e-9)

    def test_signature_separates_structure_not_values(self):
        block = five_transistor_ota()
        a = banded_placement(block, "sequential")
        b = banded_placement(block, "ysym")
        from repro.route.parasitics import annotate_parasitics
        sig_a = structure_signature(annotate_parasitics(block.circuit, a, TECH))
        sig_b = structure_signature(annotate_parasitics(block.circuit, b, TECH))
        assert sig_a == sig_b  # values differ, structure does not
        other = current_mirror()
        assert structure_signature(other.circuit) != sig_a


class TestEngineSelection:
    def test_default_engine_is_compiled(self):
        assert get_engine() == "compiled"

    def test_use_engine_scopes_and_restores(self):
        assert get_engine() == "compiled"
        with use_engine("legacy"):
            assert get_engine() == "legacy"
        assert get_engine() == "compiled"
        with use_engine(None):
            assert get_engine() == "compiled"

    def test_set_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            set_engine("spectre")
