"""Physics property tests: charge conservation and bias monotonicity.

These are simulator-wide invariants checked with hypothesis across bias
conditions — KCL must hold at every converged solution, device by device,
computed independently of the solver's own residual."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import Circuit, CurrentSource, Mosfet, Resistor, VoltageSource, five_transistor_ota
from repro.netlist.nets import is_ground
from repro.sim import solve_dc
from repro.sim.mosfet import terminal_currents
from repro.tech import generic_tech_40

TECH = generic_tech_40()


def node_current_sums(circuit, result):
    """Independent KCL audit: net → sum of currents leaving it."""
    sums = {net: 0.0 for net in circuit.nets() if not is_ground(net)}

    def add(net, value):
        if net in sums:
            sums[net] += value

    for device in circuit:
        if isinstance(device, Mosfet):
            op = terminal_currents(
                TECH.params_for(device.polarity), device.width, device.length,
                result.voltage(device.net("d")), result.voltage(device.net("g")),
                result.voltage(device.net("s")), result.voltage(device.net("b")),
            )
            add(device.net("d"), op.ids)
            add(device.net("s"), -op.ids)
        elif isinstance(device, Resistor):
            i = (result.voltage(device.net("a"))
                 - result.voltage(device.net("b"))) / device.value
            add(device.net("a"), i)
            add(device.net("b"), -i)
        elif isinstance(device, CurrentSource):
            add(device.net("p"), device.dc)
            add(device.net("n"), -device.dc)
        elif isinstance(device, VoltageSource):
            i = result.current(device.name)
            add(device.net("p"), i)
            add(device.net("n"), -i)
    return sums


class TestKcl:
    @given(vcm=st.floats(min_value=0.45, max_value=0.75),
           vbn=st.floats(min_value=0.50, max_value=0.70))
    @settings(max_examples=15, deadline=None)
    def test_kcl_holds_across_bias(self, vcm, vbn):
        block = five_transistor_ota()
        result = solve_dc(block.circuit, TECH,
                          source_values={"vvip": vcm, "vvin": vcm, "vvbn": vbn})
        for net, total in node_current_sums(block.circuit, result).items():
            assert abs(total) < 1e-8, (net, total)

    def test_kcl_on_mirror(self):
        from repro.netlist import current_mirror
        block = current_mirror()
        result = solve_dc(block.circuit, TECH)
        for net, total in node_current_sums(block.circuit, result).items():
            assert abs(total) < 1e-8, (net, total)


class TestBiasMonotonicity:
    @given(step=st.floats(min_value=0.01, max_value=0.05))
    @settings(max_examples=10, deadline=None)
    def test_tail_bias_monotone_in_supply_current(self, step):
        """Raising the tail gate bias can only increase supply current."""
        block = five_transistor_ota()
        lo = solve_dc(block.circuit, TECH, source_values={"vvbn": 0.55})
        hi = solve_dc(block.circuit, TECH, source_values={"vvbn": 0.55 + step})
        assert -hi.current("vvdd") >= -lo.current("vvdd") - 1e-12
