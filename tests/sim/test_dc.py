"""DC analysis tests against hand-calculable circuits, plus integration
tests that every library block's operating point converges and is sane."""

import math

import numpy as np
import pytest

from repro.netlist import (
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    VoltageSource,
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
)
from repro.sim import dc_sweep, solve_dc
from repro.sim.mosfet import terminal_currents
from repro.tech import generic_tech_40

TECH = generic_tech_40()


def divider():
    ckt = Circuit("divider")
    ckt.add(VoltageSource("v1", {"p": "in", "n": "gnd"}, dc=1.0))
    ckt.add(Resistor("r1", {"a": "in", "b": "mid"}, value=1e3))
    ckt.add(Resistor("r2", {"a": "mid", "b": "gnd"}, value=3e3))
    return ckt


class TestLinearCircuits:
    def test_resistor_divider(self):
        result = solve_dc(divider(), TECH)
        assert result.voltage("mid") == pytest.approx(0.75, rel=1e-6)

    def test_source_branch_current_sign(self):
        # 1 V across 4 kohm total: 0.25 mA drawn; current p->n through the
        # source is therefore negative (delivering).
        result = solve_dc(divider(), TECH)
        assert result.current("v1") == pytest.approx(-0.25e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        ckt = Circuit("ir")
        ckt.add(CurrentSource("i1", {"p": "gnd", "n": "x"}, dc=1e-3))
        ckt.add(Resistor("r1", {"a": "x", "b": "gnd"}, value=2e3))
        result = solve_dc(ckt, TECH)
        assert result.voltage("x") == pytest.approx(2.0, rel=1e-6)

    def test_vcvs_gain(self):
        from repro.netlist import Vcvs
        ckt = Circuit("vcvs")
        ckt.add(VoltageSource("vin", {"p": "a", "n": "gnd"}, dc=0.2))
        ckt.add(Vcvs("e1", {"p": "out", "n": "gnd", "cp": "a", "cn": "gnd"}, gain=5.0))
        ckt.add(Resistor("rl", {"a": "out", "b": "gnd"}, value=1e3))
        result = solve_dc(ckt, TECH)
        assert result.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_unknown_net_lookup(self):
        result = solve_dc(divider(), TECH)
        with pytest.raises(KeyError, match="net"):
            result.voltage("nope")
        with pytest.raises(KeyError, match="element"):
            result.current("nope")


class TestMosfetBias:
    def test_diode_connected_nmos(self):
        # 20 uA into a diode-connected device: vgs = vth + sqrt(2 I / k).
        ckt = Circuit("diode")
        ckt.add(CurrentSource("ib", {"p": "gnd", "n": "bias"}, dc=20e-6))
        ckt.add(Mosfet("m1", {"d": "bias", "g": "bias", "s": "gnd", "b": "gnd"},
                       polarity=+1, width=4e-6, length=0.5e-6, n_units=4))
        result = solve_dc(ckt, TECH)
        k = TECH.nmos.kp * 4e-6 / 0.5e-6
        expected = TECH.nmos.vth0 + math.sqrt(2 * 20e-6 / k)
        assert result.voltage("bias") == pytest.approx(expected, abs=0.03)

    def test_simple_current_mirror_copies(self):
        ckt = Circuit("mirror")
        ckt.add(VoltageSource("vdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
        ckt.add(CurrentSource("ib", {"p": "vdd", "n": "bias"}, dc=20e-6))
        kw = dict(polarity=+1, width=4e-6, length=0.5e-6, n_units=4)
        ckt.add(Mosfet("mref", {"d": "bias", "g": "bias", "s": "gnd", "b": "gnd"}, **kw))
        ckt.add(Mosfet("mout", {"d": "out", "g": "bias", "s": "gnd", "b": "gnd"}, **kw))
        ckt.add(VoltageSource("vprobe", {"p": "out", "n": "gnd"}, dc=0.55))
        result = solve_dc(ckt, TECH)
        # Probe current: mirror pulls ~20uA out of the probe (p->n positive
        # current means current into the node from the probe).
        i_out = result.current("vprobe")
        assert abs(i_out) == pytest.approx(20e-6, rel=0.1)

    def test_common_source_stage(self):
        ckt = Circuit("cs")
        ckt.add(VoltageSource("vdd", {"p": "vdd", "n": "gnd"}, dc=1.1))
        ckt.add(VoltageSource("vin", {"p": "in", "n": "gnd"}, dc=0.55))
        ckt.add(Resistor("rl", {"a": "vdd", "b": "out"}, value=20e3))
        ckt.add(Mosfet("m1", {"d": "out", "g": "in", "s": "gnd", "b": "gnd"},
                       polarity=+1, width=2e-6, length=0.2e-6, n_units=2))
        result = solve_dc(ckt, TECH)
        # Output must sit between the rails, below vdd (device conducting).
        assert 0.05 < result.voltage("out") < 1.05

    def test_kcl_balance_at_internal_node(self):
        # The mirror's bias node: source current in == diode current out.
        ckt = Circuit("diode2")
        ckt.add(CurrentSource("ib", {"p": "gnd", "n": "bias"}, dc=10e-6))
        ckt.add(Mosfet("m1", {"d": "bias", "g": "bias", "s": "gnd", "b": "gnd"},
                       polarity=+1, width=2e-6, length=0.5e-6, n_units=2))
        result = solve_dc(ckt, TECH)
        op = terminal_currents(
            TECH.nmos, 2e-6, 0.5e-6,
            result.voltage("bias"), result.voltage("bias"), 0.0, 0.0,
        )
        assert op.ids == pytest.approx(10e-6, rel=1e-3)


class TestWarmStartAndSweep:
    def test_warm_start_converges_faster(self):
        block = five_transistor_ota()
        cold = solve_dc(block.circuit, TECH)
        warm = solve_dc(block.circuit, TECH, x0=cold.x)
        assert warm.iterations <= cold.iterations
        assert warm.voltage("outp") == pytest.approx(cold.voltage("outp"), abs=1e-6)

    def test_dc_sweep_input(self):
        block = five_transistor_ota()
        values = np.linspace(0.5, 0.7, 5)
        results = dc_sweep(block.circuit, TECH, "vvip", values)
        outs = [r.voltage("outp") for r in results]
        # Rising vip steers current away from m2's branch: output rises
        # monotonically (NMOS input, PMOS mirror load).
        assert all(outs[i] < outs[i + 1] for i in range(len(outs) - 1))

    def test_sweep_unknown_source_rejected(self):
        block = five_transistor_ota()
        with pytest.raises(KeyError, match="source"):
            dc_sweep(block.circuit, TECH, "nosuch", np.array([0.5]))


@pytest.mark.parametrize("builder", [
    current_mirror, comparator, folded_cascode_ota, five_transistor_ota,
])
class TestLibraryBlocksConverge:
    def test_dc_converges(self, builder):
        block = builder()
        result = solve_dc(block.circuit, TECH)
        for net, v in result.voltages.items():
            assert -0.2 <= v <= 1.3, (net, v)

    def test_supply_delivers_current(self, builder):
        block = builder()
        result = solve_dc(block.circuit, TECH)
        assert result.current("vvdd") < 0  # delivering


class TestOperatingRegions:
    def test_folded_cascode_devices_saturated(self):
        block = folded_cascode_ota()
        result = solve_dc(block.circuit, TECH)
        ckt = block.circuit
        for name in ("m1", "m2", "mn1", "mn2", "mc1", "mc2", "mp1", "mp2"):
            m = ckt.device(name)
            op = terminal_currents(
                TECH.params_for(m.polarity), m.width, m.length,
                result.voltage(m.net("d")), result.voltage(m.net("g")),
                result.voltage(m.net("s")), result.voltage(m.net("b")),
            )
            assert op.saturated, f"{name} not saturated"

    def test_ota_output_near_midrail(self):
        block = folded_cascode_ota()
        result = solve_dc(block.circuit, TECH)
        assert 0.3 < result.voltage("outp") < 0.9
