"""Tests for generic measurement extraction on synthetic transfer functions."""

import math

import numpy as np
import pytest

from repro.sim import (
    bandwidth_3db,
    db,
    dc_gain,
    gain_margin_db,
    phase_margin,
    supply_power,
    unity_gain_frequency,
)


def single_pole(freqs, a0=1000.0, fp=1e4):
    return a0 / (1.0 + 1j * freqs / fp)


def two_pole(freqs, a0=1000.0, fp1=1e4, fp2=1e7):
    return a0 / ((1.0 + 1j * freqs / fp1) * (1.0 + 1j * freqs / fp2))


FREQS = np.logspace(1, 10, 400)


class TestBasics:
    def test_db(self):
        assert db(10.0) == pytest.approx(20.0)
        assert db(1.0) == pytest.approx(0.0)

    def test_dc_gain(self):
        h = single_pole(FREQS)
        assert dc_gain(h) == pytest.approx(1000.0, rel=1e-3)

    def test_dc_gain_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            dc_gain(np.array([]))

    def test_supply_power_sign(self):
        # Delivering supply: negative branch current, positive power.
        assert supply_power(1.1, -1e-3) == pytest.approx(1.1e-3)


class TestSinglePole:
    def test_bandwidth(self):
        h = single_pole(FREQS, a0=1000.0, fp=1e4)
        assert bandwidth_3db(FREQS, h) == pytest.approx(1e4, rel=0.03)

    def test_unity_gain_frequency(self):
        # GBW product: f_unity ~ a0 * fp for a single pole.
        h = single_pole(FREQS, a0=1000.0, fp=1e4)
        assert unity_gain_frequency(FREQS, h) == pytest.approx(1e7, rel=0.03)

    def test_phase_margin_near_90(self):
        h = single_pole(FREQS, a0=1000.0, fp=1e4)
        assert phase_margin(FREQS, h) == pytest.approx(90.0, abs=2.0)

    def test_no_unity_crossing_returns_none(self):
        h = single_pole(FREQS, a0=0.5, fp=1e4)  # gain never reaches 1
        assert unity_gain_frequency(FREQS, h) is None
        assert phase_margin(FREQS, h) is None


class TestTwoPole:
    def test_phase_margin_reduced_by_second_pole(self):
        # Crossover lands at ~7.9 MHz (the second pole pulls it below
        # a0*fp1 = 10 MHz); phase there is -90 - atan(0.79) ~ -128 deg.
        h = two_pole(FREQS, a0=1000.0, fp1=1e4, fp2=1e7)
        pm = phase_margin(FREQS, h)
        assert pm == pytest.approx(52.0, abs=4.0)

    def test_gain_margin_exists_for_two_pole_with_delay(self):
        # A two-pole system never quite reaches -180, so no gain margin.
        h = two_pole(FREQS)
        assert gain_margin_db(FREQS, h) is None

    def test_three_pole_gain_margin(self):
        # Phase hits -180 at f = 1e6 where |H| = a0/200; with a0 = 100 the
        # gain margin is +20*log10(2) = 6 dB.
        h = 100.0 / ((1 + 1j * FREQS / 1e4)
                     * (1 + 1j * FREQS / 1e6)
                     * (1 + 1j * FREQS / 1e6))
        gm = gain_margin_db(FREQS, h)
        assert gm == pytest.approx(6.0, abs=1.0)


class TestBandwidthEdgeCases:
    def test_flat_response_has_no_bandwidth(self):
        h = np.full(len(FREQS), 5.0 + 0j)
        assert bandwidth_3db(FREQS, h) is None

    def test_zero_dc_gain(self):
        h = np.zeros(len(FREQS), dtype=complex)
        assert bandwidth_3db(FREQS, h) is None
