"""Model-level tests: the MOSFET equations against analytic expectations.

The most load-bearing test here is the finite-difference validation of the
terminal partial derivatives — a wrong Jacobian poisons Newton convergence
in ways that are miserable to debug downstream.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.mosfet import device_caps, terminal_currents
from repro.tech import nominal_nmos_40, nominal_pmos_40

NMOS = nominal_nmos_40()
PMOS = nominal_pmos_40()
W, L = 2e-6, 0.2e-6


class TestSquareLawRegions:
    def test_saturation_current_magnitude(self):
        # Strong inversion, deep saturation: ids ~ 0.5 k (W/L) vov^2 (1 + lam vds).
        vgs, vds = 0.8, 0.9
        op = terminal_currents(NMOS, W, L, vd=vds, vg=vgs, vs=0.0, vb=0.0)
        vov = vgs - NMOS.vth0
        k = NMOS.kp * W / L
        expected = 0.5 * k * vov**2 * (1.0 + NMOS.lam_at(L) * vds)
        assert op.ids == pytest.approx(expected, rel=0.05)  # softplus smoothing
        assert op.saturated

    def test_triode_region_flagged(self):
        op = terminal_currents(NMOS, W, L, vd=0.05, vg=0.9, vs=0.0, vb=0.0)
        assert not op.saturated
        assert op.ids > 0

    def test_subthreshold_current_is_small(self):
        op = terminal_currents(NMOS, W, L, vd=0.6, vg=0.2, vs=0.0, vb=0.0)
        on = terminal_currents(NMOS, W, L, vd=0.6, vg=0.8, vs=0.0, vb=0.0)
        assert 0 < op.ids < on.ids * 1e-3

    def test_zero_vds_zero_current(self):
        op = terminal_currents(NMOS, W, L, vd=0.0, vg=0.9, vs=0.0, vb=0.0)
        assert op.ids == pytest.approx(0.0, abs=1e-15)

    def test_current_scales_with_geometry(self):
        op1 = terminal_currents(NMOS, W, L, vd=0.8, vg=0.8, vs=0.0, vb=0.0)
        op2 = terminal_currents(NMOS, 2 * W, L, vd=0.8, vg=0.8, vs=0.0, vb=0.0)
        assert op2.ids == pytest.approx(2 * op1.ids, rel=1e-9)

    def test_body_effect_reduces_current(self):
        no_bias = terminal_currents(NMOS, W, L, vd=0.8, vg=0.7, vs=0.0, vb=0.0)
        reverse = terminal_currents(NMOS, W, L, vd=0.8, vg=0.7, vs=0.0, vb=-0.4)
        assert reverse.ids < no_bias.ids
        assert reverse.vth > no_bias.vth


class TestSymmetryAndPolarity:
    def test_drain_source_swap_antisymmetry(self):
        fwd = terminal_currents(NMOS, W, L, vd=0.3, vg=0.9, vs=0.1, vb=0.0)
        rev = terminal_currents(NMOS, W, L, vd=0.1, vg=0.9, vs=0.3, vb=0.0)
        assert rev.ids == pytest.approx(-fwd.ids, rel=1e-9)

    def test_pmos_conducts_downward(self):
        # Source at vdd, gate low: PMOS on; drain current is negative
        # (conventional current flows source -> drain).
        op = terminal_currents(PMOS, W, L, vd=0.3, vg=0.2, vs=1.1, vb=1.1)
        assert op.ids < 0

    def test_pmos_off_when_gate_high(self):
        off = terminal_currents(PMOS, W, L, vd=0.3, vg=1.1, vs=1.1, vb=1.1)
        on = terminal_currents(PMOS, W, L, vd=0.3, vg=0.2, vs=1.1, vb=1.1)
        assert abs(off.ids) < abs(on.ids) * 1e-3

    def test_pmos_mirrors_nmos_exactly(self):
        # PMOS at negated bias must equal negated NMOS current if the
        # parameter sets matched; use the NMOS set for both flavours.
        import dataclasses
        pseudo_pmos = dataclasses.replace(NMOS, polarity=-1)
        n = terminal_currents(NMOS, W, L, vd=0.6, vg=0.8, vs=0.0, vb=0.0)
        p = terminal_currents(pseudo_pmos, W, L, vd=-0.6, vg=-0.8, vs=0.0, vb=0.0)
        assert p.ids == pytest.approx(-n.ids, rel=1e-12)


voltages = st.floats(min_value=-1.2, max_value=1.2, allow_nan=False)


class TestDerivatives:
    @given(vd=voltages, vg=voltages, vs=voltages, vb=st.floats(min_value=-1.2, max_value=0.0))
    @settings(max_examples=200, deadline=None)
    def test_nmos_partials_match_finite_difference(self, vd, vg, vs, vb):
        h = 1e-7
        op = terminal_currents(NMOS, W, L, vd, vg, vs, vb)
        partials = {"d": op.gdd, "g": op.gdg, "s": op.gds_, "b": op.gdb}
        base = dict(vd=vd, vg=vg, vs=vs, vb=vb)
        # The model is C^1 but not C^2 (curvature flips sign at vds = 0 and
        # the subthreshold knee is nanovolt-sharp), so a central difference
        # carries an O(k*h) error floor in addition to the relative term.
        k_dev = NMOS.kp * W / L
        for term, analytic in partials.items():
            hi = dict(base); hi["v" + term] += h
            lo = dict(base); lo["v" + term] -= h
            num = (terminal_currents(NMOS, W, L, **hi).ids
                   - terminal_currents(NMOS, W, L, **lo).ids) / (2 * h)
            scale = max(abs(analytic), abs(num), 1e-8)
            allow = 5e-3 * scale + 2.0 * k_dev * h
            assert abs(analytic - num) < allow, (term, analytic, num)

    @given(vd=voltages, vg=voltages, vs=voltages)
    @settings(max_examples=100, deadline=None)
    def test_pmos_partials_match_finite_difference(self, vd, vg, vs):
        h = 1e-7
        vb = 1.1
        op = terminal_currents(PMOS, W, L, vd, vg, vs, vb)
        partials = {"d": op.gdd, "g": op.gdg, "s": op.gds_}
        base = dict(vd=vd, vg=vg, vs=vs, vb=vb)
        k_dev = PMOS.kp * W / L
        for term, analytic in partials.items():
            hi = dict(base); hi["v" + term] += h
            lo = dict(base); lo["v" + term] -= h
            num = (terminal_currents(PMOS, W, L, **hi).ids
                   - terminal_currents(PMOS, W, L, **lo).ids) / (2 * h)
            scale = max(abs(analytic), abs(num), 1e-8)
            allow = 5e-3 * scale + 2.0 * k_dev * h
            assert abs(analytic - num) < allow, (term, analytic, num)

    def test_gm_positive_in_strong_inversion(self):
        op = terminal_currents(NMOS, W, L, vd=0.8, vg=0.8, vs=0.0, vb=0.0)
        assert op.gm > 0
        assert op.gds > 0


class TestContinuity:
    def test_triode_saturation_boundary_is_smooth(self):
        # Fine sweep across the vds = vov boundary (~0.35 V): the current
        # must be continuous — adjacent steps never jump by more than a few
        # times the median step.
        vgs = 0.8
        vds_grid = [0.30 + 0.0005 * i for i in range(201)]
        ids = [
            terminal_currents(NMOS, W, L, vd=v, vg=vgs, vs=0.0, vb=0.0).ids
            for v in vds_grid
        ]
        steps = [abs(ids[i + 1] - ids[i]) for i in range(len(ids) - 1)]
        # The slope decays smoothly through the knee and then flattens to
        # the channel-length-modulation slope; it must never spike upward.
        for i in range(1, len(steps)):
            assert steps[i] <= 1.05 * steps[i - 1] + 1e-15, (i, steps[i - 1], steps[i])

    def test_monotone_in_vds(self):
        vgs = 0.8
        ids = [
            terminal_currents(NMOS, W, L, vd=0.01 * i, vg=vgs, vs=0.0, vb=0.0).ids
            for i in range(111)
        ]
        assert all(ids[i + 1] >= ids[i] for i in range(len(ids) - 1))


class TestCaps:
    def test_cap_magnitudes(self):
        caps = device_caps(NMOS, W, L)
        assert caps.cgs > caps.cgd > 0
        assert caps.cdb > 0
        # fF scale for a 2u/0.2u device.
        assert 1e-16 < caps.cgs < 1e-14

    def test_caps_scale_with_width(self):
        small = device_caps(NMOS, W, L)
        big = device_caps(NMOS, 2 * W, L)
        assert big.cgs == pytest.approx(2 * small.cgs, rel=1e-9)
