"""Noise analysis tests against closed-form results."""

import math

import numpy as np
import pytest

from repro.netlist import Capacitor, Circuit, Resistor, VoltageSource, five_transistor_ota
from repro.sim import solve_dc
from repro.sim.noise import BOLTZMANN, ROOM_TEMPERATURE, solve_noise
from repro.tech import generic_tech_40

TECH = generic_tech_40()
KT4 = 4.0 * BOLTZMANN * ROOM_TEMPERATURE


def rc_network(r=10e3, c=1e-12):
    ckt = Circuit("rc_noise")
    ckt.add(VoltageSource("vs", {"p": "in", "n": "gnd"}, dc=0.0))
    ckt.add(Resistor("r1", {"a": "in", "b": "out"}, value=r))
    ckt.add(Capacitor("c1", {"a": "out", "b": "gnd"}, value=c))
    return ckt


class TestResistorThermalNoise:
    def test_flat_band_psd_is_4ktr(self):
        r = 10e3
        ckt = rc_network(r=r, c=1e-15)  # pole far above the test band
        op = solve_dc(ckt, TECH)
        freqs = np.logspace(3, 5, 10)
        result = solve_noise(ckt, TECH, op.voltages, freqs, "out")
        expected = KT4 * r
        assert result.output_psd[0] == pytest.approx(expected, rel=0.01)
        assert result.output_psd[-1] == pytest.approx(expected, rel=0.02)

    def test_ktc_integral(self):
        """The classic: total noise of an RC filter is kT/C, independent
        of R."""
        c = 1e-12
        for r in (1e3, 100e3):
            ckt = rc_network(r=r, c=c)
            op = solve_dc(ckt, TECH)
            fp = 1.0 / (2 * math.pi * r * c)
            freqs = np.logspace(math.log10(fp / 1e3), math.log10(fp * 1e3), 400)
            result = solve_noise(ckt, TECH, op.voltages, freqs, "out")
            ktc = BOLTZMANN * ROOM_TEMPERATURE / c
            assert result.output_rms() ** 2 == pytest.approx(ktc, rel=0.05), r

    def test_divider_parallel_resistance(self):
        # Two resistors to a mid node: PSD = 4kT (R1 || R2).
        ckt = Circuit("divider_noise")
        ckt.add(VoltageSource("vs", {"p": "top", "n": "gnd"}, dc=1.0))
        ckt.add(Resistor("r1", {"a": "top", "b": "mid"}, value=20e3))
        ckt.add(Resistor("r2", {"a": "mid", "b": "gnd"}, value=20e3))
        op = solve_dc(ckt, TECH)
        result = solve_noise(ckt, TECH, op.voltages, np.array([1e4]), "mid")
        assert result.output_psd[0] == pytest.approx(KT4 * 10e3, rel=0.01)


class TestMosfetNoise:
    @pytest.fixture(scope="class")
    def ota(self):
        block = five_transistor_ota()
        op = solve_dc(block.circuit, TECH)
        freqs = np.logspace(2, 8, 40)
        return solve_noise(block.circuit, TECH, op.voltages, freqs, "outp")

    def test_flicker_dominates_low_frequency(self, ota):
        # PSD falls with frequency through the flicker corner.
        assert ota.output_psd[0] > 5 * ota.output_psd[len(ota.freqs) // 2]

    def test_contributions_sum_to_total(self, ota):
        stacked = sum(ota.contributions.values())
        assert np.allclose(stacked, ota.output_psd, rtol=1e-9)

    def test_input_pair_among_dominant(self, ota):
        # At mid-band the input pair and mirror dominate a 5T OTA.
        mid = len(ota.freqs) // 2
        ranked = sorted(ota.contributions,
                        key=lambda n: ota.contributions[n][mid], reverse=True)
        assert set(ranked[:3]) & {"m1", "m2", "mp1", "mp2"}

    def test_input_referred(self, ota):
        gain = np.full(len(ota.freqs), 100.0)
        inp = ota.input_referred_psd(gain)
        assert np.allclose(inp, ota.output_psd / 1e4)

    def test_input_referred_shape_mismatch(self, ota):
        with pytest.raises(ValueError, match="grid"):
            ota.input_referred_psd(np.ones(3))

    def test_dominant_contributor_name(self, ota):
        assert ota.dominant_contributor() in ota.contributions


class TestValidation:
    def test_positive_frequencies_required(self):
        ckt = rc_network()
        op = solve_dc(ckt, TECH)
        with pytest.raises(ValueError, match="positive"):
            solve_noise(ckt, TECH, op.voltages, np.array([0.0, 1e3]), "out")

    def test_bad_temperature(self):
        ckt = rc_network()
        op = solve_dc(ckt, TECH)
        with pytest.raises(ValueError, match="temperature"):
            solve_noise(ckt, TECH, op.voltages, np.array([1e3]), "out",
                        temperature=0.0)

    def test_unknown_output_net(self):
        ckt = rc_network()
        op = solve_dc(ckt, TECH)
        with pytest.raises(KeyError, match="output net"):
            solve_noise(ckt, TECH, op.voltages, np.array([1e3]), "nowhere")
