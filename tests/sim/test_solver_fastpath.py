"""Solver fast-path equivalence, op-cache semantics and determinism.

The fast path (modified Newton with Jacobian reuse, forced LU / sparse
factorizations, operating-point warm starts, pluggable array backend)
must be a pure accelerator: every knob combination has to land on the
same solution as the preserved reference loop
(``solver_tuning(jacobian_reuse=False, op_cache=False)``) to ≤ 1e-10 on
every library block under nominal, corner and random variation deltas —
and results must stay bit-identical across serial and process-pool
execution.
"""

import numpy as np
import pytest

from repro.eval.evaluator import PlacementEvaluator
from repro.eval.warm import WarmStore, dc_features
from repro.layout.generators import banded_placement
from repro.netlist.library import (
    comparator,
    current_mirror,
    five_transistor_ota,
    folded_cascode_ota,
    two_stage_ota,
)
from repro.route.parasitics import annotate_parasitics
from repro.sim import (
    ArrayBackend,
    logspace_frequencies,
    reset_solver_stats,
    set_array_backend,
    solve_ac,
    solve_dc,
    solve_dc_many,
    solver_stats,
    solver_tuning,
    use_array_backend,
)
from repro.tech import generic_tech_40
from repro.variation import DeviceDelta, corner

BUILDERS = {
    "cm": current_mirror,
    "comp": comparator,
    "ota": folded_cascode_ota,
    "ota5t": five_transistor_ota,
    "ota2s": two_stage_ota,
}
TOL = 1e-10
FREQS = logspace_frequencies(1e4, 1e9, points_per_decade=3)

#: Each entry forces one fast-path mechanism on the small library blocks
#: (reuse_min_size=1 overrides the size gate that normally keeps scalar
#: Newton on the reference loop for systems this small).
KNOBS = {
    "jacobian_reuse": dict(reuse_min_size=1),
    "forced_lu": dict(lu_threshold=1, reuse_min_size=1),
    "forced_sparse": dict(sparse_threshold=1),
    "forced_sparse_reuse": dict(sparse_threshold=1, reuse_min_size=1),
}

REFERENCE = dict(jacobian_reuse=False, op_cache=False)


def _delta_regimes(block):
    """Nominal, corner-shifted and randomly varied device deltas."""
    mosfets = list(block.circuit.mosfets())
    ss = corner("ss")
    rng = np.random.default_rng(7)
    return {
        "nominal": {},
        "corner": {m.name: ss.delta_for(m.polarity) for m in mosfets},
        "random": {
            m.name: DeviceDelta(
                dvth=float(rng.normal(0.0, 5e-3)),
                dbeta_rel=float(rng.normal(0.0, 0.02)),
            )
            for m in mosfets
        },
    }


@pytest.fixture(scope="module")
def cases():
    """kind → (annotated circuit, tech, regime → deltas, regime → x_ref)."""
    tech = generic_tech_40()
    out = {}
    for kind, builder in BUILDERS.items():
        block = builder()
        placement = banded_placement(block, "ysym")
        annotated = annotate_parasitics(block.circuit, placement, tech)
        regimes = _delta_regimes(block)
        refs = {}
        with solver_tuning(**REFERENCE):
            for regime, deltas in regimes.items():
                refs[regime] = solve_dc(annotated, tech, deltas=deltas)
        out[kind] = (annotated, tech, regimes, refs)
    return out


class TestKnobEquivalence:
    @pytest.mark.parametrize("knob", sorted(KNOBS))
    @pytest.mark.parametrize("regime", ("nominal", "corner", "random"))
    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_dc_matches_reference(self, cases, kind, regime, knob):
        annotated, tech, regimes, refs = cases[kind]
        with solver_tuning(**KNOBS[knob]):
            got = solve_dc(annotated, tech, deltas=regimes[regime])
        assert np.max(np.abs(got.x - refs[regime].x)) < TOL

    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_warm_start_matches_cold(self, cases, kind):
        annotated, tech, regimes, refs = cases[kind]
        ref = refs["random"]
        got = solve_dc(annotated, tech, deltas=regimes["random"], x0=ref.x)
        assert np.max(np.abs(got.x - ref.x)) < TOL
        assert got.iterations <= ref.iterations

    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_batched_reuse_matches_scalar_reference(self, cases, kind):
        annotated, tech, regimes, refs = cases[kind]
        order = ("nominal", "corner", "random")
        batch = solve_dc_many(
            [annotated] * len(order), tech,
            [regimes[r] for r in order],
        )
        for regime, got in zip(order, batch):
            assert np.max(np.abs(got.x - refs[regime].x)) < TOL

    def test_ac_from_fast_op_matches_reference(self, cases):
        annotated, tech, regimes, refs = cases["ota2s"]
        deltas = regimes["random"]
        ref = refs["random"]
        with solver_tuning(**REFERENCE):
            want = solve_ac(annotated, tech, ref.voltages, FREQS,
                            deltas=deltas)
        op = solve_dc(annotated, tech, deltas=deltas)
        got = solve_ac(annotated, tech, op.voltages, FREQS, deltas=deltas)
        for net, h in want.node_voltages.items():
            assert np.max(np.abs(got.node_voltages[net] - h)) < TOL * (
                1.0 + np.max(np.abs(h)))


class TestOpCache:
    def test_exact_hit_reuses_operating_point(self):
        block = five_transistor_ota()
        evaluator = PlacementEvaluator(block, engine="compiled")
        placement = banded_placement(block, "ysym")
        first = evaluator.evaluate(placement)
        evaluator.clear_cache()
        reset_solver_stats()
        again = evaluator.evaluate(placement)
        assert solver_stats().warm_exact_hits >= 1
        # The reused operating point is the stored one, bit for bit.
        assert again.values == first.values

    def test_cache_disabled_never_hits(self):
        block = five_transistor_ota()
        evaluator = PlacementEvaluator(block, engine="compiled")
        placement = banded_placement(block, "ysym")
        reset_solver_stats()
        with solver_tuning(op_cache=False):
            evaluator.evaluate(placement)
            evaluator.clear_cache()
            evaluator.evaluate(placement)
        stats = solver_stats()
        assert stats.warm_exact_hits == 0
        assert stats.warm_near_hits == 0

    def test_store_seed_roundtrip(self, cases):
        annotated, tech, regimes, refs = cases["cm"]
        store = WarmStore()
        feats = dc_features(regimes["random"])
        result = refs["random"]
        store.store("cm", feats, result)
        exact, x0 = store.seed("cm", feats)
        assert exact is result and x0 is None
        # A nearby query gets the stored solution as a Newton seed.
        near = feats + 1e-5
        exact, x0 = store.seed("cm", near)
        assert exact is None
        assert x0 is result.x
        # Bounded: the library evicts oldest entries beyond the cap.
        with solver_tuning(op_cache_size=2):
            for k in range(3):
                store.store("cm", feats + k, result)
        assert len(store._library["cm"].entries) == 2

    def test_evaluator_warm_is_store(self):
        block = current_mirror()
        evaluator = PlacementEvaluator(block)
        assert isinstance(evaluator._warm, WarmStore)
        # The legacy dict protocol still works on top.
        evaluator.evaluate(banded_placement(block, "ysym"))
        assert "cm" in evaluator._warm


class CountingBackend(ArrayBackend):
    name = "counting"

    def __init__(self):
        self.calls = 0

    def solve(self, A, B):
        self.calls += 1
        return super().solve(A, B)


class TestBackendSeam:
    def test_stacked_solves_route_through_backend(self, cases):
        annotated, tech, regimes, refs = cases["ota5t"]
        counting = CountingBackend()
        with use_array_backend(counting):
            got = solve_ac(annotated, tech, refs["nominal"].voltages, FREQS)
        assert counting.calls > 0
        want = solve_ac(annotated, tech, refs["nominal"].voltages, FREQS)
        for net, h in want.node_voltages.items():
            assert np.array_equal(got.node_voltages[net], h)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            set_array_backend("tpu")


class TestParallelDeterminism:
    def test_fig3_serial_pool_bit_identical(self):
        """Fast-path results do not depend on the execution backend."""
        from repro.experiments import ExperimentConfig, run_fig3
        from repro.runtime import ProcessPoolBackend, SerialBackend

        config = ExperimentConfig(
            name="CM", builder=current_mirror, max_steps=15, seeds=(3,),
            ql_worse_tolerance=1.0,
        )
        serial = run_fig3(config, backend=SerialBackend())
        parallel = run_fig3(config, backend=ProcessPoolBackend(jobs=2))
        for a, b in zip(serial.rows, parallel.rows):
            assert a.primary == b.primary, a.algorithm
            assert a.fom == b.fom, a.algorithm
            assert a.placement.signature() == b.placement.signature()
