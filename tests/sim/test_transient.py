"""Transient analysis tests: RC step response and latch regeneration."""

import math

import numpy as np
import pytest

from repro.netlist import (
    Capacitor,
    Circuit,
    Mosfet,
    Resistor,
    VoltageSource,
    comparator,
)
from repro.sim import solve_transient, step_waveform
from repro.tech import generic_tech_40

TECH = generic_tech_40()


def rc_circuit(r=10e3, c=1e-12):
    ckt = Circuit("rc_tran")
    ckt.add(VoltageSource("vin", {"p": "in", "n": "gnd"}, dc=0.0))
    ckt.add(Resistor("r1", {"a": "in", "b": "out"}, value=r))
    ckt.add(Capacitor("c1", {"a": "out", "b": "gnd"}, value=c))
    return ckt


class TestRcStep:
    def test_charging_matches_analytic(self):
        r, c = 10e3, 1e-12
        tau = r * c
        result = solve_transient(
            rc_circuit(r, c), TECH, t_stop=5 * tau, dt=tau / 200,
            waveforms={"vin": step_waveform(0.0, 0.0, 1.0, t_rise=tau / 200)},
        )
        v = result.waveform("out")
        t = result.times
        # Compare at 1, 2, 3 tau (skip the ramp region).
        for n_tau in (1.0, 2.0, 3.0):
            k = int(np.argmin(np.abs(t - n_tau * tau)))
            expected = 1.0 - math.exp(-n_tau)
            assert v[k] == pytest.approx(expected, abs=0.02)

    def test_crossing_time(self):
        r, c = 10e3, 1e-12
        tau = r * c
        result = solve_transient(
            rc_circuit(r, c), TECH, t_stop=5 * tau, dt=tau / 200,
            waveforms={"vin": step_waveform(0.0, 0.0, 1.0, t_rise=tau / 500)},
        )
        t_half = result.crossing_time("out", 0.5)
        assert t_half == pytest.approx(tau * math.log(2.0), rel=0.05)

    def test_no_crossing_returns_none(self):
        result = solve_transient(rc_circuit(), TECH, t_stop=1e-9, dt=1e-11)
        assert result.crossing_time("out", 0.5) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="dt"):
            solve_transient(rc_circuit(), TECH, t_stop=1e-9, dt=0.0)
        with pytest.raises(ValueError, match="dt"):
            solve_transient(rc_circuit(), TECH, t_stop=1e-9, dt=1e-8)
        with pytest.raises(ValueError, match="t_rise"):
            step_waveform(0.0, 0.0, 1.0, t_rise=0.0)

    def test_unknown_net_rejected(self):
        result = solve_transient(rc_circuit(), TECH, t_stop=1e-10, dt=1e-11)
        with pytest.raises(KeyError, match="net"):
            result.waveform("ghost")


class TestLatchRegeneration:
    def test_comparator_outputs_diverge_from_seed(self):
        """The StrongARM latch regenerates a seeded imbalance: outputs split
        to the rails, the direction set by the seed."""
        block = comparator()
        # Evaluation phase, balanced inputs, seeded output imbalance.
        result = solve_transient(
            block.circuit, TECH, t_stop=2e-9, dt=5e-12,
            ic={"outp": 0.57, "outn": 0.53},
        )
        vp = result.waveform("outp")
        vn = result.waveform("outn")
        assert vp[-1] - vn[-1] > 0.5  # decided, correct direction
        assert vp[-1] > 0.9
        assert vn[-1] < 0.4

    def test_comparator_decision_follows_input(self):
        block = comparator()
        # vin above vip: m2 pulls p2 harder, outp should fall.
        result = solve_transient(
            block.circuit, TECH, t_stop=2e-9, dt=5e-12,
            waveforms={"vvip": lambda t: 0.68, "vvin": lambda t: 0.72},
            ic={"outp": 0.55, "outn": 0.55},
        )
        vp = result.waveform("outp")
        vn = result.waveform("outn")
        assert vn[-1] - vp[-1] > 0.5
