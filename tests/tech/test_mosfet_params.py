"""Unit tests for nominal MOSFET parameter sets."""

import pytest

from repro.tech import MosfetParams, nominal_nmos_40, nominal_pmos_40


class TestNominalSets:
    def test_nmos_polarity(self):
        assert nominal_nmos_40().is_nmos
        assert not nominal_nmos_40().is_pmos

    def test_pmos_polarity(self):
        assert nominal_pmos_40().is_pmos
        assert not nominal_pmos_40().is_nmos

    def test_nmos_stronger_than_pmos(self):
        # Electron mobility exceeds hole mobility in any bulk CMOS node.
        assert nominal_nmos_40().kp > nominal_pmos_40().kp

    def test_thresholds_reasonable_for_40nm(self):
        for params in (nominal_nmos_40(), nominal_pmos_40()):
            assert 0.2 < params.vth0 < 0.7

    def test_frozen(self):
        with pytest.raises(AttributeError):
            nominal_nmos_40().vth0 = 0.5


class TestValidation:
    def _base(self, **overrides):
        kwargs = dict(
            polarity=+1,
            vth0=0.45,
            kp=4e-4,
            lam=0.2,
            l_ref=40e-9,
            gamma=0.35,
            phi=0.8,
            cox_area=1.35e-2,
            cj_area=1e-3,
            subthreshold_slope=0.03,
        )
        kwargs.update(overrides)
        return MosfetParams(**kwargs)

    def test_bad_polarity_rejected(self):
        with pytest.raises(ValueError, match="polarity"):
            self._base(polarity=0)

    def test_negative_vth_rejected(self):
        with pytest.raises(ValueError, match="vth0"):
            self._base(vth0=-0.4)

    def test_nonpositive_kp_rejected(self):
        with pytest.raises(ValueError, match="kp"):
            self._base(kp=0.0)

    def test_nonpositive_slope_rejected(self):
        with pytest.raises(ValueError, match="subthreshold_slope"):
            self._base(subthreshold_slope=0.0)


class TestLamScaling:
    def test_lam_at_reference_length(self):
        p = nominal_nmos_40()
        assert p.lam_at(p.l_ref) == pytest.approx(p.lam)

    def test_longer_channel_modulates_less(self):
        p = nominal_nmos_40()
        assert p.lam_at(4 * p.l_ref) == pytest.approx(p.lam / 4)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            nominal_nmos_40().lam_at(0.0)


class TestWithDeltas:
    def test_identity_delta(self):
        p = nominal_nmos_40()
        q = p.with_deltas()
        assert q == p

    def test_vth_shift(self):
        p = nominal_nmos_40()
        q = p.with_deltas(dvth=0.010)
        assert q.vth0 == pytest.approx(p.vth0 + 0.010)
        assert q.kp == p.kp

    def test_beta_shift_is_relative(self):
        p = nominal_nmos_40()
        q = p.with_deltas(dbeta_rel=0.05)
        assert q.kp == pytest.approx(p.kp * 1.05)

    def test_original_unchanged(self):
        p = nominal_nmos_40()
        p.with_deltas(dvth=0.1, dbeta_rel=0.1)
        assert p == nominal_nmos_40()

    def test_catastrophic_beta_rejected(self):
        with pytest.raises(ValueError, match="dbeta_rel"):
            nominal_nmos_40().with_deltas(dbeta_rel=-1.0)
