"""Unit tests for the Technology container."""

import dataclasses

import pytest

from repro.tech import Technology, generic_tech_40, nominal_nmos_40, nominal_pmos_40


@pytest.fixture
def tech():
    return generic_tech_40()


class TestGenericTech40:
    def test_supply_is_40nm_class(self, tech):
        assert 0.9 <= tech.vdd <= 1.2

    def test_grid_pitch_positive(self, tech):
        assert tech.grid_pitch > 0

    def test_params_for_polarities(self, tech):
        assert tech.params_for(+1).is_nmos
        assert tech.params_for(-1).is_pmos

    def test_params_for_bad_polarity(self, tech):
        with pytest.raises(ValueError, match="polarity"):
            tech.params_for(0)

    def test_cell_to_metres(self, tech):
        assert tech.cell_to_metres(3) == pytest.approx(3 * tech.grid_pitch)

    def test_unit_area(self, tech):
        assert tech.unit_area() == pytest.approx(tech.unit_width * tech.unit_length)

    def test_cell_area(self, tech):
        assert tech.cell_area() == pytest.approx(tech.grid_pitch**2)


class TestValidation:
    def test_swapped_polarity_sets_rejected(self, tech):
        with pytest.raises(ValueError, match="polarity"):
            dataclasses.replace(tech, nmos=nominal_pmos_40())
        with pytest.raises(ValueError, match="polarity"):
            dataclasses.replace(tech, pmos=nominal_nmos_40())

    def test_nonpositive_pitch_rejected(self, tech):
        with pytest.raises(ValueError, match="grid_pitch"):
            dataclasses.replace(tech, grid_pitch=0.0)

    def test_nonpositive_vdd_rejected(self, tech):
        with pytest.raises(ValueError, match="vdd"):
            dataclasses.replace(tech, vdd=-1.0)

    def test_nonpositive_unit_dims_rejected(self, tech):
        with pytest.raises(ValueError, match="dimensions"):
            dataclasses.replace(tech, unit_width=0.0)
