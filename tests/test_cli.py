"""CLI tests — every subcommand exercised through main()."""

import pytest

from repro.cli import main


class TestStyles:
    def test_styles_cm(self, capsys):
        assert main(["styles", "--circuit", "cm"]) == 0
        out = capsys.readouterr().out
        assert "common_centroid" in out
        assert "mismatch_pct" in out

    def test_styles_default_circuit(self, capsys):
        assert main(["styles"]) == 0
        assert "sequential" in capsys.readouterr().out


class TestSpice:
    def test_spice_deck_printed(self, capsys):
        assert main(["spice", "--circuit", "ota5t"]) == 0
        out = capsys.readouterr().out
        assert ".model nmos40" in out
        assert out.rstrip().endswith(".end")

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["spice", "--circuit", "dac"])


class TestPlace:
    def test_place_quick_run(self, capsys, tmp_path):
        svg = tmp_path / "out.svg"
        code = main(["place", "--circuit", "ota5t", "--steps", "60",
                     "--seed", "1", "--svg", str(svg)])
        assert code == 0
        out = capsys.readouterr().out
        assert "target" in out
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_place_jobs_flag_accepted(self, capsys):
        code = main(["place", "--circuit", "ota5t", "--steps", "30",
                     "--seed", "1", "--jobs", "2"])
        assert code == 0
        assert "target" in capsys.readouterr().out


class TestFig3:
    def test_fig3_positional_circuit_with_jobs(self, capsys):
        code = main(["fig3", "cm", "--scale", "0.1", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q-learning" in out
        assert "claims:" in out

    def test_fig3_flag_and_positional_agree(self, capsys):
        assert main(["fig3", "--circuit", "cm", "--scale", "0.05"]) == 0
        flagged = capsys.readouterr().out
        assert main(["fig3", "cm", "--scale", "0.05"]) == 0
        positional = capsys.readouterr().out
        assert flagged == positional


class TestAblation:
    def test_linearity_via_cli(self, capsys):
        code = main(["ablation", "linearity", "--circuit", "ota5t",
                     "--steps", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nonlinear" in out

    def test_hierarchy_via_cli(self, capsys):
        code = main(["ablation", "hierarchy", "--circuit", "ota5t",
                     "--steps", "80"])
        assert code == 0
        assert "multi-level" in capsys.readouterr().out

    def test_jobs_flag_fans_out(self, capsys):
        code = main(["ablation", "hierarchy", "--circuit", "ota5t",
                     "--steps", "40", "--jobs", "2"])
        assert code == 0
        assert "multi-level" in capsys.readouterr().out

    def test_requires_which(self):
        with pytest.raises(SystemExit):
            main(["ablation"])


class TestFig3:
    def test_fig3_scaled_down(self, capsys):
        # 5 % of the committed budget: seconds, still exercises the whole
        # three-way comparison path end to end.
        code = main(["fig3", "--circuit", "cm", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q-learning" in out
        assert "Symmetric (SOTA)" in out
        assert "claims:" in out

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            main(["fig3", "--circuit", "cm", "--scale", "0"])


class TestTrain:
    def test_train_quick_campaign(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        svg = tmp_path / "best.svg"
        code = main(["train", "ota5t", "--workers", "2", "--rounds", "2",
                     "--steps", "25", "--run-to-budget",
                     "--checkpoint-dir", str(ckpt), "--svg", str(svg)])
        assert code == 0
        out = capsys.readouterr().out
        assert "island campaign" in out
        assert "2 workers x 2/2 rounds" in out
        assert "merged +new/~upd/=kept" in out
        assert len(list(ckpt.glob("round_*.json"))) == 2
        assert svg.read_text().startswith("<svg")

    def test_train_jobs_flag_accepted(self, capsys):
        code = main(["train", "ota5t", "--workers", "2", "--rounds", "1",
                     "--steps", "20", "--jobs", "2"])
        assert code == 0
        assert "island campaign" in capsys.readouterr().out

    def test_train_merge_how_validated(self):
        with pytest.raises(SystemExit):
            main(["train", "ota5t", "--merge-how", "average"])

    def test_train_requires_circuit(self):
        with pytest.raises(SystemExit):
            main(["train"])

    def test_train_rejects_bad_workers(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["train", "ota5t", "--workers", "0"])


class TestProfile:
    def test_profile_default_engine(self, capsys):
        assert main(["profile", "ota5t", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        for stage in ("context", "parasitics", "dc", "ac", "measures"):
            assert stage in out
        assert "compiled (default)" in out

    def test_profile_explicit_engine(self, capsys):
        assert main(["profile", "cm", "--engine", "legacy",
                     "--repeats", "1"]) == 0
        assert "engine=legacy" in capsys.readouterr().out

    def test_profile_requires_circuit(self):
        with pytest.raises(SystemExit):
            main(["profile"])

    def test_profile_rejects_bad_repeats(self):
        with pytest.raises(SystemExit, match="repeats"):
            main(["profile", "cm", "--repeats", "0"])


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrainServiceFlags:
    def test_train_visits_merge_scale_and_policy_store(self, capsys, tmp_path):
        code = main([
            "train", "ota5t", "--workers", "2", "--rounds", "1",
            "--steps", "15", "--merge-how", "visits",
            "--target-scale", "0.9", "--run-to-budget",
            "--save-policy", "ota5t-cli", "--policy-dir", str(tmp_path),
            "--prune-min-visits", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "merge=visits" in out
        assert "stored policy ota5t-cli@1" in out
        assert (tmp_path / "ota5t-cli" / "v0001.json").exists()

    def test_place_warm_policy_round_trip(self, capsys, tmp_path):
        assert main([
            "train", "ota5t", "--workers", "2", "--rounds", "1",
            "--steps", "15", "--run-to-budget",
            "--save-policy", "warm", "--policy-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "place", "--circuit", "ota5t", "--steps", "20",
            "--warm-policy", "warm", "--policy-dir", str(tmp_path),
        ]) == 0
        assert "target" in capsys.readouterr().out

    def test_place_missing_policy_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no stored policy"):
            main(["place", "--circuit", "ota5t", "--steps", "10",
                  "--warm-policy", "ghost", "--policy-dir", str(tmp_path)])
