"""Tests for the island-model shared-policy training campaign."""

import pytest

from repro.core import QTable
from repro.core.persistence import load_tables_snapshot
from repro.core.qlearning import MergeStats
from repro.train import TrainingCampaign, run_campaign
from repro.train.campaign import merge_tables


def fast_campaign(**overrides):
    kwargs = dict(
        workers=2, rounds=2, steps_per_round=25, seed=0,
        stop_at_target=False,  # run every round so merging is exercised
    )
    kwargs.update(overrides)
    return run_campaign("ota5t", **kwargs)


class TestCampaignBasics:
    @pytest.fixture(scope="class")
    def result(self):
        return fast_campaign()

    def test_runs_all_rounds_and_improves(self, result):
        assert result.rounds_run == 2
        assert result.best_cost <= result.initial_cost
        assert result.improvement >= 0.0

    def test_master_policy_accumulates(self, result):
        assert result.master_entries > 0
        assert all(isinstance(t, QTable) for t in result.master_tables.values())
        # Multi-level placer: top agent plus one agent per group.
        assert ("top",) in result.master_tables
        assert any(k[0] == "bottom" for k in result.master_tables)

    def test_round_reports_consistent(self, result):
        totals = 0
        for i, rep in enumerate(result.rounds):
            assert rep.index == i
            totals += rep.sims
            assert rep.sims_total == totals
            assert rep.merge.total > 0
        assert result.total_sims == totals
        # Master only ever grows under a merge.
        sizes = [rep.master_entries for rep in result.rounds]
        assert sizes == sorted(sizes)

    def test_history_seeded_and_monotone(self, result):
        assert result.history[0] == (1, result.initial_cost)
        costs = [c for __, c in result.history]
        assert all(b <= a for a, b in zip(costs, costs[1:]))

    def test_campaign_deterministic(self, result):
        again = fast_campaign()
        assert again.best_cost == result.best_cost
        assert again.history == result.history
        assert ({k: sorted(t.items()) for k, t in again.master_tables.items()}
                == {k: sorted(t.items())
                    for k, t in result.master_tables.items()})


class TestTargetHandling:
    def test_stop_at_target_ends_campaign_early(self):
        # The symmetric target is generous: round 1 reaches it.
        result = run_campaign("ota5t", workers=2, rounds=4,
                              steps_per_round=40, seed=0,
                              stop_at_target=True)
        assert result.reached_target
        assert result.rounds_run < 4
        assert result.sims_to_target == result.total_sims

    def test_explicit_target_respected(self):
        result = fast_campaign(target=0.0, target_from_symmetric=False)
        assert result.target == 0.0
        assert not result.reached_target

    def test_no_target(self):
        result = fast_campaign(rounds=1, target=None,
                               target_from_symmetric=False)
        assert result.target is None
        assert result.sims_to_target is None


class TestWarmStart:
    def test_warm_start_seeds_round_one(self):
        first = fast_campaign(rounds=1)
        warm = fast_campaign(rounds=1, warm_start=first.master_tables)
        # Round one of the warm campaign merges its workers into a master
        # that already holds the seed policy, so entries only grow.
        assert warm.master_entries >= first.master_entries

    def test_warm_start_snapshot_not_mutated(self):
        first = fast_campaign(rounds=1)
        before = {k: sorted(t.items()) for k, t in first.master_tables.items()}
        fast_campaign(rounds=1, warm_start=first.master_tables)
        after = {k: sorted(t.items()) for k, t in first.master_tables.items()}
        assert before == after


class TestCheckpoints:
    def test_round_checkpoints_written_and_load(self, tmp_path):
        result = fast_campaign(checkpoint_dir=tmp_path)
        files = sorted(tmp_path.glob("round_*.json"))
        assert len(files) == result.rounds_run
        tables, meta = load_tables_snapshot(files[-1])
        assert meta["round"] == result.rounds_run - 1
        assert meta["merge_how"] == result.merge_how
        assert ({k: sorted(t.items()) for k, t in tables.items()}
                == {k: sorted(t.items())
                    for k, t in result.master_tables.items()})


class TestMergeTables:
    def test_merge_into_empty_master(self):
        a = QTable()
        a.set("s", "x", 1.0)
        master = {}
        stats = merge_tables(master, {("top",): a}, how="max")
        assert isinstance(stats, MergeStats)
        assert stats.added == 1
        assert master[("top",)].get("s", "x") == 1.0

    def test_flat_placer_campaign(self):
        result = fast_campaign(placer="flat", rounds=1)
        assert set(result.master_tables) == {("agent",)}
        assert result.master_entries > 0


class TestValidation:
    def test_sa_rejected(self):
        with pytest.raises(ValueError, match="placer"):
            TrainingCampaign("ota5t", placer="sa")

    def test_bad_merge_how_rejected(self):
        with pytest.raises(ValueError, match="merge_how"):
            TrainingCampaign("ota5t", merge_how="average")

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            TrainingCampaign("ota5t", workers=0)
        with pytest.raises(ValueError, match="rounds"):
            TrainingCampaign("ota5t", rounds=0)
        with pytest.raises(ValueError, match="steps_per_round"):
            TrainingCampaign("ota5t", steps_per_round=0)

    def test_jobs_and_backend_exclusive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign("ota5t", jobs=2, backend=2)


class TestVisitsMergeCampaign:
    def test_visits_merge_how_runs_and_accumulates_evidence(self):
        result = run_campaign("ota5t", workers=2, rounds=2,
                              steps_per_round=15, seed=3,
                              merge_how="visits", stop_at_target=False)
        assert result.merge_how == "visits"
        assert result.master_entries > 0
        visited = [
            entry
            for table in result.master_tables.values()
            for entry in table.entries() if entry[3] > 0
        ]
        assert visited, "merged master carries no visit counts"

    def test_visits_campaign_deterministic_across_backends(self):
        kwargs = dict(workers=2, rounds=2, steps_per_round=12, seed=5,
                      merge_how="visits", stop_at_target=False)
        serial = run_campaign("ota5t", **kwargs)
        parallel = run_campaign("ota5t", backend=2, **kwargs)
        assert serial.best_cost == parallel.best_cost
        assert serial.total_sims == parallel.total_sims
        for key, table in serial.master_tables.items():
            assert sorted(table.entries()) == sorted(
                parallel.master_tables[key].entries())


class TestTargetScale:
    def test_scale_multiplies_symmetric_target(self):
        easy = run_campaign("ota5t", workers=1, rounds=1,
                            steps_per_round=5, seed=0)
        hard = run_campaign("ota5t", workers=1, rounds=1,
                            steps_per_round=5, seed=0, target_scale=0.5)
        assert hard.target == easy.target * 0.5

    def test_explicit_target_not_scaled(self):
        result = run_campaign("ota5t", workers=1, rounds=1,
                              steps_per_round=5, seed=0, target=0.25,
                              target_from_symmetric=False,
                              target_scale=0.5)
        assert result.target == 0.25

    def test_bad_scale_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="target_scale"):
            run_campaign("ota5t", target_scale=0.0)


class TestVisitEvidenceAccounting:
    def test_round_warm_start_does_not_double_count_evidence(self):
        """Workers warm-start from a visit-stripped master: counts they
        ship back mean 'updates performed this round', so the round-end
        merge sums genuine evidence instead of re-counting the master's
        own history once per worker."""
        from repro.core.qlearning import QTable
        from repro.train.campaign import merge_tables, strip_visits

        master = {("top",): QTable()}
        master[("top",)].set("s", "a", 1.0, visits=5)

        shipped = strip_visits(master)
        assert shipped[("top",)].get("s", "a") == 1.0
        assert shipped[("top",)].visits("s", "a") == 0
        # The worker performs two genuine Bellman updates on top.
        shipped[("top",)].record("s", "a", 2.0)
        shipped[("top",)].record("s", "a", 3.0)

        merge_tables(master, shipped, how="visits")
        # 5 historical + 2 new — not 5 + (5 inherited + 2) = 12.
        assert master[("top",)].visits("s", "a") == 7

    def test_strip_visits_does_not_mutate_the_master(self):
        from repro.core.qlearning import QTable
        from repro.train.campaign import strip_visits

        master = {("top",): QTable()}
        master[("top",)].set("s", "a", 1.0, visits=3)
        stripped = strip_visits(master)
        stripped[("top",)].record("s", "a", 9.0)
        assert master[("top",)].get("s", "a") == 1.0
        assert master[("top",)].visits("s", "a") == 3
