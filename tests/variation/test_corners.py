"""Tests for global process corners."""

import pytest

from repro.eval import PlacementEvaluator
from repro.layout import banded_placement
from repro.netlist import current_mirror, five_transistor_ota
from repro.variation import CORNERS, DeviceDelta, ProcessCorner, corner


class TestCornerDefinitions:
    def test_five_corners(self):
        assert set(CORNERS) == {"tt", "ff", "ss", "fs", "sf"}

    def test_tt_is_zero(self):
        tt = corner("tt")
        assert tt.delta_for(+1) == DeviceDelta()
        assert tt.delta_for(-1) == DeviceDelta()

    def test_ff_is_fast(self):
        ff = corner("FF")  # case-insensitive
        assert ff.delta_for(+1).dvth < 0
        assert ff.delta_for(+1).dbeta_rel > 0

    def test_skewed_corners_oppose(self):
        fs = corner("fs")
        assert fs.delta_for(+1).dvth < 0  # fast NMOS
        assert fs.delta_for(-1).dvth > 0  # slow PMOS

    def test_unknown_corner_rejected(self):
        with pytest.raises(KeyError, match="unknown corner"):
            corner("xx")

    def test_bad_polarity_rejected(self):
        with pytest.raises(ValueError, match="polarity"):
            corner("tt").delta_for(0)

    def test_deltas_for_circuit(self):
        ckt = five_transistor_ota().circuit
        deltas = corner("ss").deltas(ckt)
        assert set(deltas) == {m.name for m in ckt.mosfets()}


class TestCornerEvaluation:
    def test_corner_shifts_absolute_metrics(self):
        block = five_transistor_ota()
        placement = banded_placement(block, "common_centroid")
        tt = PlacementEvaluator(block).evaluate(placement)
        ss = PlacementEvaluator(block, corner=corner("ss")).evaluate(placement)
        # Slow corner: less current, less power and bandwidth.
        assert ss["power_w"] < tt["power_w"]
        assert ss["gbw_hz"] < tt["gbw_hz"]

    def test_corner_alone_creates_no_field_scale_mismatch(self):
        """A die-wide shift moves every matched device together: the only
        corner-induced mismatch is the channel-length-modulation residue
        of shifted operating points (sub-0.2 %), nowhere near the ~2.4 %
        the non-linear field causes."""
        from repro.variation import default_variation_model
        block = current_mirror()
        placement = banded_placement(block, "common_centroid")
        novar = default_variation_model(1e-4, kind="none", with_lde=False)
        clean = PlacementEvaluator(block, variation=novar)
        skewed = PlacementEvaluator(block, variation=novar, corner=corner("ss"))
        assert clean.evaluate(placement).primary_value < 0.2
        assert skewed.evaluate(placement).primary_value < 0.2

    def test_optimized_layout_holds_at_corners(self):
        """The paper's technology-agnostic claim, corner flavoured: a
        layout that beats symmetric at TT still beats it at every skewed
        corner (the local field, not the global corner, is what placement
        fights)."""
        from repro.core import MultiLevelPlacer
        from repro.layout import PlacementEnv
        block = current_mirror()
        tt_eval = PlacementEvaluator(block)
        sym = banded_placement(block, "ysym")
        target = tt_eval.cost(sym)
        env = PlacementEnv(block, tt_eval.cost)
        placer = MultiLevelPlacer(env, seed=1, worse_tolerance=0.2,
                                  sim_counter=lambda: tt_eval.sim_count)
        optimized = placer.optimize(max_steps=250, target=target).best_placement
        for name in ("ff", "ss", "fs", "sf"):
            ev = PlacementEvaluator(block, corner=corner(name))
            assert (ev.evaluate(optimized).primary_value
                    < ev.evaluate(sym).primary_value), name
