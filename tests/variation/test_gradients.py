"""Unit + property tests for spatial gradient fields."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.variation import (
    CompositeField,
    LinearGradient,
    QuadraticGradient,
    RadialGradient,
    SinusoidalGradient,
    UniformField,
)
from repro.variation.gradients import field_span

coords = st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False)


class TestUniformField:
    @given(coords, coords)
    def test_constant_everywhere(self, x, y):
        assert UniformField(0.005).value(x, y) == 0.005

    def test_zero_default(self):
        assert UniformField().value(1.0, 2.0) == 0.0


class TestLinearGradient:
    def test_zero_at_origin(self):
        assert LinearGradient(gx=1.0, gy=2.0).value(0.0, 0.0) == 0.0

    def test_slope_along_x(self):
        f = LinearGradient(gx=3.0, gy=0.0)
        assert f.value(2.0, 17.0) == pytest.approx(6.0)

    def test_offset_origin(self):
        f = LinearGradient(gx=1.0, gy=1.0, x0=1.0, y0=1.0)
        assert f.value(1.0, 1.0) == 0.0

    @given(coords, coords, coords, coords)
    def test_superposition(self, x1, y1, x2, y2):
        """Linearity: f(a) + f(b) == f(a + b) for zero-origin gradients."""
        f = LinearGradient(gx=2.0, gy=-3.0)
        assert f.value(x1, y1) + f.value(x2, y2) == pytest.approx(
            f.value(x1 + x2, y1 + y2), abs=1e-12
        )

    @given(coords, coords)
    def test_common_centroid_cancels_linear(self, x, y):
        """The classical result: points mirrored through the centroid cancel."""
        f = LinearGradient(gx=5.0, gy=-7.0, x0=0.3e-3, y0=-0.2e-3)
        centre_x, centre_y = 0.1e-3, 0.05e-3
        a = f.value(centre_x + x, centre_y + y)
        b = f.value(centre_x - x, centre_y - y)
        assert (a + b) / 2 == pytest.approx(f.value(centre_x, centre_y), abs=1e-9)


class TestQuadraticGradient:
    def test_bowl_minimum_at_centre(self):
        f = QuadraticGradient(cxx=1.0, cyy=1.0, x0=2.0, y0=3.0)
        assert f.value(2.0, 3.0) == 0.0
        assert f.value(2.5, 3.0) > 0.0

    @given(coords, coords)
    def test_common_centroid_does_not_cancel_quadratic(self, x, y):
        """The paper's counter-example: even terms survive mirroring."""
        f = QuadraticGradient(cxx=1.0, cyy=1.0)
        a = f.value(x, y)
        b = f.value(-x, -y)
        # Mirrored points see the *same* value, so their difference from the
        # centre value does not cancel — it doubles.
        assert a == pytest.approx(b, abs=1e-12)

    def test_cross_term(self):
        f = QuadraticGradient(cxx=0.0, cyy=0.0, cxy=2.0)
        assert f.value(3.0, 4.0) == pytest.approx(24.0)


class TestSinusoidalGradient:
    def test_requires_some_wavelength(self):
        with pytest.raises(ValueError, match="wavelength"):
            SinusoidalGradient(amplitude=1.0)

    def test_positive_wavelength_required(self):
        with pytest.raises(ValueError, match="positive"):
            SinusoidalGradient(amplitude=1.0, wavelength_x=-1.0)

    def test_periodicity_x(self):
        f = SinusoidalGradient(amplitude=1.0, wavelength_x=2.0)
        assert f.value(0.3, 0.0) == pytest.approx(f.value(2.3, 0.0))

    def test_amplitude_bound(self):
        f = SinusoidalGradient(amplitude=0.5, wavelength_x=1.0, wavelength_y=1.3)
        for i in range(10):
            for j in range(10):
                assert abs(f.value(i * 0.17, j * 0.23)) <= 0.5 + 1e-12

    def test_one_dimensional_in_y_when_only_wx(self):
        f = SinusoidalGradient(amplitude=1.0, wavelength_x=2.0)
        assert f.value(0.5, 0.0) == pytest.approx(f.value(0.5, 123.0))


class TestRadialGradient:
    def test_peak_at_centre(self):
        f = RadialGradient(amplitude=2.0, sigma=1.0, x0=1.0, y0=1.0)
        assert f.value(1.0, 1.0) == pytest.approx(2.0)

    def test_decay(self):
        f = RadialGradient(amplitude=2.0, sigma=1.0)
        assert f.value(0.0, 0.0) > f.value(1.0, 0.0) > f.value(2.0, 0.0) > 0.0

    def test_isotropy(self):
        f = RadialGradient(amplitude=1.0, sigma=0.7)
        r = 1.3
        assert f.value(r, 0.0) == pytest.approx(f.value(0.0, r))
        assert f.value(r / math.sqrt(2), r / math.sqrt(2)) == pytest.approx(
            f.value(r, 0.0)
        )

    def test_bad_sigma_rejected(self):
        with pytest.raises(ValueError, match="sigma"):
            RadialGradient(amplitude=1.0, sigma=0.0)


class TestCompositeField:
    def test_empty_is_zero(self):
        assert CompositeField().value(5.0, -3.0) == 0.0

    def test_sum_of_components(self):
        f = CompositeField((UniformField(1.0), UniformField(2.5)))
        assert f.value(0.0, 0.0) == pytest.approx(3.5)

    def test_plus_returns_new(self):
        base = CompositeField((UniformField(1.0),))
        extended = base.plus(UniformField(1.0))
        assert base.value(0, 0) == 1.0
        assert extended.value(0, 0) == 2.0

    @given(coords, coords)
    def test_matches_manual_sum(self, x, y):
        parts = (
            LinearGradient(gx=1.0, gy=2.0),
            QuadraticGradient(cxx=3.0, cyy=4.0),
        )
        f = CompositeField(parts)
        assert f.value(x, y) == pytest.approx(sum(p.value(x, y) for p in parts))


class TestFieldSpan:
    def test_uniform_has_zero_span(self):
        assert field_span(UniformField(3.0), extent=1.0) == 0.0

    def test_linear_span(self):
        f = LinearGradient(gx=1.0, gy=0.0)
        assert field_span(f, extent=2.0) == pytest.approx(2.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="samples"):
            field_span(UniformField(), extent=1.0, samples=1)
