"""Unit tests for the LOD/STI-stress and well-proximity models."""

import math

import pytest

from repro.variation import LodStressModel, UnitContext, WellProximityModel


class TestUnitContext:
    def test_defaults(self):
        ctx = UnitContext(x=1e-6, y=2e-6)
        assert ctx.run_left == 0
        assert ctx.run_right == 0
        assert math.isinf(ctx.dist_to_edge)

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError, match="runs"):
            UnitContext(x=0, y=0, run_left=-1)

    def test_negative_edge_distance_rejected(self):
        with pytest.raises(ValueError, match="dist_to_edge"):
            UnitContext(x=0, y=0, dist_to_edge=-1.0)


class TestLodStress:
    def setup_method(self):
        self.model = LodStressModel(k_beta=0.02, k_vth=0.002)

    def test_isolated_unit_feels_full_stress(self):
        ctx = UnitContext(x=0, y=0, run_left=0, run_right=0)
        # NMOS: compressive stress degrades mobility.
        assert self.model.dbeta_rel(ctx, +1) == pytest.approx(-0.02)
        # PMOS: the same stress improves mobility.
        assert self.model.dbeta_rel(ctx, -1) == pytest.approx(+0.02)

    def test_abutment_relieves_stress(self):
        isolated = UnitContext(x=0, y=0, run_left=0, run_right=0)
        embedded = UnitContext(x=0, y=0, run_left=4, run_right=4)
        assert abs(self.model.dbeta_rel(embedded, +1)) < abs(
            self.model.dbeta_rel(isolated, +1)
        )

    def test_stress_monotone_in_run_length(self):
        shifts = [
            abs(self.model.dbeta_rel(UnitContext(x=0, y=0, run_left=n, run_right=n), +1))
            for n in range(5)
        ]
        assert shifts == sorted(shifts, reverse=True)

    def test_asymmetric_runs_average(self):
        ctx = UnitContext(x=0, y=0, run_left=0, run_right=3)
        expected = -0.02 * 0.5 * (1.0 + 0.25)
        assert self.model.dbeta_rel(ctx, +1) == pytest.approx(expected)

    def test_vth_shift_polarity_independent_sign(self):
        ctx = UnitContext(x=0, y=0)
        assert self.model.dvth(ctx, +1) == pytest.approx(self.model.dvth(ctx, -1))
        assert self.model.dvth(ctx, +1) > 0

    def test_bad_polarity_rejected(self):
        ctx = UnitContext(x=0, y=0)
        with pytest.raises(ValueError, match="polarity"):
            self.model.dbeta_rel(ctx, 0)
        with pytest.raises(ValueError, match="polarity"):
            self.model.dvth(ctx, 2)


class TestWellProximity:
    def setup_method(self):
        self.model = WellProximityModel(k_vth=0.004, decay_length=2e-6)

    def test_full_shift_at_edge(self):
        ctx = UnitContext(x=0, y=0, dist_to_edge=0.0)
        assert self.model.dvth(ctx) == pytest.approx(0.004)

    def test_exponential_decay(self):
        at_decay = UnitContext(x=0, y=0, dist_to_edge=2e-6)
        assert self.model.dvth(at_decay) == pytest.approx(0.004 / math.e)

    def test_far_from_edge_vanishes(self):
        ctx = UnitContext(x=0, y=0, dist_to_edge=math.inf)
        assert self.model.dvth(ctx) == 0.0

    def test_monotone_decay(self):
        shifts = [
            self.model.dvth(UnitContext(x=0, y=0, dist_to_edge=d * 1e-6))
            for d in range(6)
        ]
        assert shifts == sorted(shifts, reverse=True)

    def test_bad_decay_length_rejected(self):
        with pytest.raises(ValueError, match="decay_length"):
            WellProximityModel(decay_length=0.0)
