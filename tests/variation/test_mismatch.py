"""Unit + statistical tests for the Pelgrom mismatch model."""

import math

import numpy as np
import pytest

from repro.variation import PelgromMismatch


class TestSigmas:
    def setup_method(self):
        self.model = PelgromMismatch(a_vth=3.5e-9, a_beta=1e-8)

    def test_pelgrom_area_scaling(self):
        # Quadrupling area halves sigma.
        small = self.model.sigma_vth(1e-6, 1e-6)
        large = self.model.sigma_vth(2e-6, 2e-6)
        assert large == pytest.approx(small / 2)

    def test_magnitude_is_mv_scale(self):
        # A 1 um x 0.15 um unit should sit in the single-mV range.
        sigma = self.model.sigma_vth(1e-6, 0.15e-6)
        assert 1e-3 < sigma < 20e-3

    def test_device_sigma_shrinks_with_units(self):
        one = self.model.device_sigma_vth(1e-6, 1e-6, n_units=1)
        four = self.model.device_sigma_vth(1e-6, 1e-6, n_units=4)
        assert four == pytest.approx(one / 2)

    def test_zero_units_rejected(self):
        with pytest.raises(ValueError, match="n_units"):
            self.model.device_sigma_vth(1e-6, 1e-6, n_units=0)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError, match="dimensions"):
            self.model.sigma_vth(0.0, 1e-6)
        with pytest.raises(ValueError, match="dimensions"):
            self.model.sigma_beta(1e-6, -1e-6)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError, match="coefficients"):
            PelgromMismatch(a_vth=-1.0)


class TestSampling:
    def test_deterministic_under_seed(self):
        model = PelgromMismatch()
        a = model.sample_unit(1e-6, 1e-6, np.random.default_rng(7))
        b = model.sample_unit(1e-6, 1e-6, np.random.default_rng(7))
        assert a == b

    def test_sample_statistics(self):
        model = PelgromMismatch(a_vth=3.5e-9, a_beta=1e-8)
        rng = np.random.default_rng(0)
        draws = np.array([model.sample_unit(1e-6, 1e-6, rng) for _ in range(4000)])
        target_vth = model.sigma_vth(1e-6, 1e-6)
        target_beta = model.sigma_beta(1e-6, 1e-6)
        assert np.mean(draws[:, 0]) == pytest.approx(0.0, abs=4 * target_vth / math.sqrt(4000))
        assert np.std(draws[:, 0]) == pytest.approx(target_vth, rel=0.1)
        assert np.std(draws[:, 1]) == pytest.approx(target_beta, rel=0.1)

    def test_zero_coefficients_give_zero_samples(self):
        model = PelgromMismatch(a_vth=0.0, a_beta=0.0)
        dvth, dbeta = model.sample_unit(1e-6, 1e-6, np.random.default_rng(1))
        assert dvth == 0.0
        assert dbeta == 0.0
