"""Tests for the VariationModel combinator and the calibrated default."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.variation import (
    DeviceDelta,
    LinearGradient,
    LodStressModel,
    PelgromMismatch,
    UnitContext,
    VariationModel,
    WellProximityModel,
    default_variation_model,
)
from repro.variation.gradients import CompositeField, field_span


def ctx_at(x_um, y_um, **kw):
    return UnitContext(x=x_um * 1e-6, y=y_um * 1e-6, **kw)


class TestDeviceDelta:
    def test_addition(self):
        total = DeviceDelta(0.001, 0.01) + DeviceDelta(0.002, -0.005)
        assert total.dvth == pytest.approx(0.003)
        assert total.dbeta_rel == pytest.approx(0.005)

    def test_default_is_zero(self):
        assert DeviceDelta() == DeviceDelta(0.0, 0.0)


class TestSystematic:
    def test_field_only(self):
        model = VariationModel(vth_field=LinearGradient(gx=1.0, gy=0.0))
        delta = model.systematic_unit(ctx_at(2.0, 0.0), +1)
        assert delta.dvth == pytest.approx(2e-6)
        assert delta.dbeta_rel == 0.0

    def test_lde_contributions_added(self):
        model = VariationModel(
            lod=LodStressModel(k_beta=0.02, k_vth=0.002),
            wpe=WellProximityModel(k_vth=0.004, decay_length=2e-6),
        )
        ctx = UnitContext(x=0, y=0, run_left=0, run_right=0, dist_to_edge=0.0)
        delta = model.systematic_unit(ctx, +1)
        assert delta.dvth == pytest.approx(0.002 + 0.004)
        assert delta.dbeta_rel == pytest.approx(-0.02)

    def test_device_average_over_units(self):
        model = VariationModel(vth_field=LinearGradient(gx=1.0, gy=0.0))
        contexts = [ctx_at(0.0, 0.0), ctx_at(4.0, 0.0)]
        delta = model.systematic_device(contexts, +1)
        assert delta.dvth == pytest.approx(2e-6)

    def test_empty_contexts_rejected(self):
        with pytest.raises(ValueError, match="unit context"):
            VariationModel().systematic_device([], +1)

    @given(st.floats(min_value=-50, max_value=50), st.floats(min_value=-50, max_value=50))
    def test_matched_positions_give_matched_deltas(self, x_um, y_um):
        """Two devices whose units occupy identical positions always match."""
        model = default_variation_model(canvas_extent=100e-6)
        contexts = [ctx_at(x_um + 50, y_um + 50, dist_to_edge=5e-6)]
        a = model.systematic_device(contexts, +1)
        b = model.systematic_device(contexts, +1)
        assert a == b


class TestSampling:
    def test_no_mismatch_equals_systematic(self):
        model = VariationModel(vth_field=LinearGradient(gx=1.0, gy=1.0))
        contexts = [ctx_at(1.0, 2.0)]
        sampled = model.sample_device(contexts, +1, 1e-6, 1e-6, np.random.default_rng(0))
        assert sampled == model.systematic_device(contexts, +1)

    def test_mismatch_reproducible_with_seed(self):
        model = VariationModel(mismatch=PelgromMismatch())
        contexts = [ctx_at(0, 0), ctx_at(1, 0)]
        a = model.sample_device(contexts, +1, 1e-6, 1e-6, np.random.default_rng(3))
        b = model.sample_device(contexts, +1, 1e-6, 1e-6, np.random.default_rng(3))
        assert a == b

    def test_more_units_reduce_random_spread(self):
        model = VariationModel(mismatch=PelgromMismatch())
        rng = np.random.default_rng(0)
        few = [
            model.sample_device([ctx_at(0, 0)], +1, 1e-6, 1e-6, rng).dvth
            for _ in range(500)
        ]
        many = [
            model.sample_device([ctx_at(i, 0) for i in range(16)], +1, 1e-6, 1e-6, rng).dvth
            for _ in range(500)
        ]
        assert np.std(many) < np.std(few) / 2


class TestDefaultModel:
    def test_nonlinear_kind_has_nonlinear_fields(self):
        model = default_variation_model(canvas_extent=100e-6, kind="nonlinear")
        # Sample the field along a line: a linear field has zero second
        # difference; the nonlinear default must not.
        xs = [10e-6, 50e-6, 90e-6]
        vals = [model.vth_field.value(x, 30e-6) for x in xs]
        second_diff = vals[0] - 2 * vals[1] + vals[2]
        assert abs(second_diff) > 1e-6

    def test_linear_kind_is_linear(self):
        model = default_variation_model(canvas_extent=100e-6, kind="linear")
        xs = [10e-6, 50e-6, 90e-6]
        vals = [model.vth_field.value(x, 30e-6) for x in xs]
        second_diff = vals[0] - 2 * vals[1] + vals[2]
        assert abs(second_diff) < 1e-12

    def test_none_kind_is_zero(self):
        model = default_variation_model(canvas_extent=100e-6, kind="none", with_lde=False)
        assert model.systematic_unit(ctx_at(37.0, 81.0), +1) == DeviceDelta()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            default_variation_model(canvas_extent=1e-4, kind="exotic")

    def test_bad_extent_rejected(self):
        with pytest.raises(ValueError, match="canvas_extent"):
            default_variation_model(canvas_extent=0.0)

    def test_vth_span_is_mv_scale(self):
        extent = 100e-6
        model = default_variation_model(canvas_extent=extent, kind="nonlinear")
        span = field_span(model.vth_field, extent)
        assert 2e-3 < span < 50e-3

    def test_beta_span_is_percent_scale(self):
        extent = 100e-6
        model = default_variation_model(canvas_extent=extent, kind="nonlinear")
        span = field_span(model.beta_field, extent)
        assert 0.005 < span < 0.10

    def test_recentred_at_canvas_centre(self):
        extent = 80e-6
        model = default_variation_model(canvas_extent=extent, kind="nonlinear")
        assert model.vth_field.value(extent / 2, extent / 2) == pytest.approx(0.0, abs=1e-12)

    def test_mismatch_off_by_default(self):
        assert default_variation_model(canvas_extent=1e-4).mismatch is None

    def test_mismatch_on_request(self):
        model = default_variation_model(canvas_extent=1e-4, with_mismatch=True)
        assert isinstance(model.mismatch, PelgromMismatch)

    def test_lde_toggle(self):
        off = default_variation_model(canvas_extent=1e-4, with_lde=False)
        assert off.lod is None and off.wpe is None
        on = default_variation_model(canvas_extent=1e-4, with_lde=True)
        assert on.lod is not None and on.wpe is not None
