"""ZooIndex: signature matching, tiered specificity, visit-weighted folds."""

import pytest

from repro.core.qlearning import QTable
from repro.service import default_registry
from repro.service.corpus import build_entry, list_corpus
from repro.service.policies import PolicyStore
from repro.zoo import GroupSignature, ZooIndex, signature_meta

CORPUS = {entry.name: entry for entry in list_corpus()}


def _corpus_block(name):
    return build_entry(CORPUS[name])


def _mirror_tables(block, value, visits):
    """A minimal ql-shaped snapshot for ``block`` with uniform stats."""
    tables = {("top",): QTable()}
    tables[("top",)].set("g", 0, value, visits=visits)
    for group in block.groups:
        table = QTable()
        table.set("s", 0, value, visits=visits)
        tables[("bottom", group.name)] = table
    return tables


@pytest.fixture()
def store(tmp_path):
    return PolicyStore(tmp_path / "policies")


class TestScanning:
    def test_empty_store_matches_nothing(self, store):
        match = ZooIndex(store).match(_corpus_block("mirror_degen"))
        assert match.is_empty
        assert match.report["policies_scanned"] == 0
        assert match.report["groups"]["cm0"]["tier"] is None

    def test_plain_snapshots_are_invisible(self, store):
        block = default_registry().build("cm")
        store.save("plain", _mirror_tables(block, 1.0, 1))
        assert ZooIndex(store).entries() == []
        store.save("stamped", _mirror_tables(block, 1.0, 1),
                   zoo=signature_meta(block, _mirror_tables(block, 1.0, 1)))
        assert [info.ref for info in ZooIndex(store).entries()] \
            == ["stamped@1"]


class TestMatching:
    def test_exact_cross_circuit_transfer(self, store):
        """mirror_wide's trained mirror warms mirror_degen's — the decks
        share no device names, only structure."""
        wide = _corpus_block("mirror_wide")
        tables = _mirror_tables(wide, 2.0, 5)
        store.save("zoo-mw", tables, zoo=signature_meta(wide, tables))

        degen = _corpus_block("mirror_degen")
        match = ZooIndex(store).match(degen)
        assert not match.is_empty
        entry = match.report["groups"]["cm0"]
        assert entry["tier"] == "exact"
        assert entry["sources"] == ["zoo-mw@1:cm0"]
        # Remapped onto the *target's* agent address.
        assert ("bottom", "cm0") in match.tables
        # Different circuit signatures: no top-table transfer.
        assert match.report["top"] is None
        assert ("top",) not in match.tables

    def test_whole_circuit_match_transfers_top_table(self, store):
        block = _corpus_block("mirror_wide")
        tables = _mirror_tables(block, 2.0, 5)
        store.save("zoo-mw", tables, zoo=signature_meta(block, tables))
        match = ZooIndex(store).match(_corpus_block("mirror_wide"))
        assert match.report["top"] == {"sources": ["zoo-mw@1"], "entries": 1}
        assert ("top",) in match.tables

    def test_min_tier_exact_rejects_coarse(self, store):
        """A same-kind/polarity group with different unit counts matches
        at coarse tier only, so min_tier='exact' leaves it cold."""
        wide = _corpus_block("mirror_wide")
        tables = _mirror_tables(wide, 2.0, 5)
        meta = signature_meta(wide, tables)
        # Perturb the stored signature's unit counts: exact no longer
        # holds, coarse still does.
        sig = GroupSignature.from_key(meta["groups"]["cm0"])
        meta["groups"]["cm0"] = GroupSignature(
            kind=sig.kind,
            members=tuple((p, u + 1) for p, u in sig.members),
            internal_pairs=sig.internal_pairs,
        ).key()
        store.save("zoo-mw", tables, zoo=meta)

        degen = _corpus_block("mirror_degen")
        coarse = ZooIndex(store).match(degen, min_tier="coarse")
        assert coarse.report["groups"]["cm0"]["tier"] == "coarse"
        exact = ZooIndex(store).match(degen, min_tier="exact")
        assert exact.report["groups"]["cm0"]["tier"] is None
        assert exact.is_empty

    def test_exact_beats_coarse_and_visits_rank_sources(self, store):
        wide = _corpus_block("mirror_wide")
        # Policy A: exact signature, few visits.
        tables_a = _mirror_tables(wide, 1.0, 2)
        store.save("aa", tables_a, zoo=signature_meta(wide, tables_a))
        # Policy B: coarse-only signature, many visits.
        tables_b = _mirror_tables(wide, 9.0, 99)
        meta_b = signature_meta(wide, tables_b)
        sig = GroupSignature.from_key(meta_b["groups"]["cm0"])
        meta_b["groups"]["cm0"] = GroupSignature(
            sig.kind, tuple((p, u + 2) for p, u in sig.members),
            sig.internal_pairs).key()
        store.save("bb", tables_b, zoo=meta_b)

        match = ZooIndex(store).match(_corpus_block("mirror_degen"))
        entry = match.report["groups"]["cm0"]
        assert entry["tier"] == "exact"
        assert entry["sources"] == ["aa@1:cm0"]

    def test_visits_weighted_fold_and_max_sources(self, store):
        wide = _corpus_block("mirror_wide")
        heavy = _mirror_tables(wide, 4.0, 30)
        light = _mirror_tables(wide, 0.0, 10)
        store.save("heavy", heavy, zoo=signature_meta(wide, heavy))
        store.save("light", light, zoo=signature_meta(wide, light))

        match = ZooIndex(store).match(_corpus_block("mirror_degen"))
        entry = match.report["groups"]["cm0"]
        assert sorted(entry["sources"]) == ["heavy@1:cm0", "light@1:cm0"]
        folded = match.tables[("bottom", "cm0")]
        # Visit-weighted average: (30*4 + 10*0) / 40 = 3.0.
        assert folded.get("s", 0) == pytest.approx(3.0)
        assert folded.visits("s", 0) == 40

        capped = ZooIndex(store).match(_corpus_block("mirror_degen"),
                                       max_sources=1)
        # Highest visits wins the single slot.
        assert capped.report["groups"]["cm0"]["sources"] == ["heavy@1:cm0"]
        assert capped.tables[("bottom", "cm0")].get("s", 0) \
            == pytest.approx(4.0)

    def test_flat_placer_needs_whole_circuit_match(self, store):
        block = _corpus_block("mirror_wide")
        tables = {("agent",): QTable()}
        tables[("agent",)].set("s", 0, 1.0, visits=3)
        store.save("flat-mw", tables, zoo=signature_meta(block, tables))

        same = ZooIndex(store).match(_corpus_block("mirror_wide"),
                                     placer="flat")
        assert ("agent",) in same.tables
        other = ZooIndex(store).match(_corpus_block("mirror_degen"),
                                      placer="flat")
        assert other.is_empty

    def test_validation(self, store):
        block = default_registry().build("cm")
        with pytest.raises(ValueError, match="min_tier"):
            ZooIndex(store).match(block, min_tier="fuzzy")
        with pytest.raises(ValueError, match="max_sources"):
            ZooIndex(store).match(block, max_sources=0)

    def test_report_is_json_plain(self, store):
        import json

        wide = _corpus_block("mirror_wide")
        tables = _mirror_tables(wide, 2.0, 5)
        store.save("zoo-mw", tables, zoo=signature_meta(wide, tables))
        report = ZooIndex(store).match(_corpus_block("mirror_degen")).report
        assert json.loads(json.dumps(report)) == report
