"""Primitive signatures: rename-stable, serializable, visit-aware."""

import pytest

from repro.core.qlearning import QTable
from repro.service import default_registry
from repro.service.corpus import build_entry, list_corpus
from repro.zoo import (
    GroupSignature,
    block_signatures,
    circuit_signature,
    group_signature,
    signature_meta,
)

CORPUS = {entry.name: entry for entry in list_corpus()}


def _corpus_block(name):
    return build_entry(CORPUS[name])


class TestGroupSignature:
    def test_key_roundtrip(self):
        sig = GroupSignature(kind="diff_pair", members=((1, 3), (1, 3)),
                             internal_pairs=1)
        assert sig.key() == "diff_pair|+1x3,+1x3|p1"
        assert GroupSignature.from_key(sig.key()) == sig

    def test_key_roundtrip_pmos(self):
        sig = GroupSignature(kind="current_mirror",
                             members=((-1, 2), (-1, 4)), internal_pairs=0)
        assert GroupSignature.from_key(sig.key()) == sig

    def test_bad_keys_rejected(self):
        for bad in ("", "diff_pair", "diff_pair|+1x3", "diff_pair|+1x3|q1",
                    "diff_pair|+1xx3|p1"):
            with pytest.raises(ValueError):
                GroupSignature.from_key(bad)

    def test_coarse_drops_unit_counts_keeps_polarity(self):
        a = GroupSignature("diff_pair", ((1, 3), (1, 3)), 1)
        b = GroupSignature("diff_pair", ((1, 5), (1, 5)), 1)
        c = GroupSignature("diff_pair", ((-1, 3), (-1, 3)), 1)
        assert a.coarse_key() == b.coarse_key() == "diff_pair|+1,+1"
        assert a.coarse_key() != c.coarse_key()


class TestBlockSignatures:
    def test_members_sorted_and_named_by_group(self):
        block = default_registry().build("ota5t")
        sigs = block_signatures(block)
        assert set(sigs) == {g.name for g in block.groups}
        for sig in sigs.values():
            assert sig.members == tuple(sorted(sig.members))

    def test_rename_stability_across_decks(self):
        """The whole point: identical primitives in different decks (with
        different device and group names) produce equal signatures."""
        wide = block_signatures(_corpus_block("mirror_wide"))
        degen = block_signatures(_corpus_block("mirror_degen"))
        # mirror_degen is mirror_wide's nmirror with degeneration
        # resistors under every leg — same 4-member matched nmos mirror.
        assert degen["cm0"].key() in {sig.key() for sig in wide.values()}

    def test_internal_pairs_distinguish_matched_from_ratioed(self):
        ratioed = block_signatures(_corpus_block("bias_ratioed"))
        wide = block_signatures(_corpus_block("mirror_wide"))
        ratioed_keys = {sig.key() for sig in ratioed.values()}
        wide_keys = {sig.key() for sig in wide.values()}
        assert not ratioed_keys & wide_keys

    def test_circuit_signature_is_sorted_multiset(self):
        block = _corpus_block("mirror_wide")
        sig = circuit_signature(block)
        parts = sig.split(";")
        assert parts == sorted(parts)
        assert set(parts) == {
            s.key() for s in block_signatures(block).values()
        }


class TestSignatureMeta:
    def test_meta_without_tables(self):
        block = default_registry().build("cm")
        meta = signature_meta(block)
        assert meta["circuit_signature"] == circuit_signature(block)
        assert set(meta["groups"]) == {g.name for g in block.groups}
        assert "group_visits" not in meta

    def test_meta_with_tables_counts_visits(self):
        block = default_registry().build("cm")
        group = block.groups[0].name
        bottom, top = QTable(), QTable()
        bottom.set("s", 0, 1.0, visits=7)
        bottom.set("s", 1, 2.0, visits=3)
        top.set("g", 0, 0.5, visits=4)
        meta = signature_meta(block, {("top",): top,
                                      ("bottom", group): bottom})
        assert meta["group_visits"][group] == 10
        assert meta["top_visits"] == 4

    def test_meta_is_json_plain(self):
        import json

        block = _corpus_block("sf_resistive")
        meta = signature_meta(block, {})
        assert json.loads(json.dumps(meta)) == meta
